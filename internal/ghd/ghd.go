// Package ghd implements generalized hypertree decompositions, the logical
// query plans of EmptyHeaded (§3 of the paper).
//
// A GHD is a tree of bags; each bag v carries λ(v), the atoms joined at
// that bag, and χ(v), the variables the bag covers. The optimizer
// enumerates decompositions by recursively choosing a root bag and
// splitting the remaining atoms into connected components (exactly the
// search EmptyHeaded brute-forces, §3.2 "we simply brute force search
// GHDs of all possible widths"), ranking candidates by
// (fractional width, number of bags, tree depth).
//
// Selection handling follows Appendix B.1.1: atoms carrying selection
// constants are excluded from the base decomposition, then attached as
// the deepest possible leaf bags (pushdown enabled) so they execute first
// in the bottom-up Yannakakis pass — or grafted above the bags they
// filter (pushdown disabled, the "-GHD" ablation of Table 13) so the
// unrestricted subquery is computed before the selection applies.
package ghd

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emptyheaded/internal/hypergraph"
)

// Bag is one node of a GHD.
type Bag struct {
	// Edges indexes the hypergraph edges joined at this bag (λ).
	Edges []int
	// Vars are the variables covered by this bag (χ) in first-appearance
	// order.
	Vars []string
	// Children are the sub-bags.
	Children []*Bag
	// Width is the fractional edge cover number of Vars using Edges.
	Width float64
}

// GHD is a decomposition of a query hypergraph.
type GHD struct {
	H    *hypergraph.Hypergraph
	Root *Bag
	// Width is the maximum bag width (the fractional hypertree width of
	// this particular decomposition).
	Width float64
	// Bags is the total number of bags.
	Bags int
}

// Options controls the decomposition search.
type Options struct {
	// SingleBag forces the trivial one-bag GHD (the "-GHD" ablation of
	// Table 8 and the paper's model of LogicBlox plans, Fig. 3b).
	SingleBag bool
	// SelectionEdges indexes hypergraph edges whose atoms carry
	// selection constants.
	SelectionEdges []int
	// NoPushdown disables cross-bag selection pushdown (Table 13 "-GHD"):
	// selection atoms are grafted above the sub-plans they filter instead
	// of below them.
	NoPushdown bool
}

// Decompose returns the best GHD for h under opts.
func Decompose(h *hypergraph.Hypergraph, opts Options) *GHD {
	all := make([]int, len(h.Edges))
	for i := range all {
		all[i] = i
	}
	if opts.SingleBag || len(h.Edges) == 1 {
		return finish(h, newBag(h, all, nil))
	}
	isSel := map[int]bool{}
	for _, e := range opts.SelectionEdges {
		isSel[e] = true
	}
	var nonSel, sel []int
	for _, e := range all {
		if isSel[e] {
			sel = append(sel, e)
		} else {
			nonSel = append(nonSel, e)
		}
	}
	if len(nonSel) == 0 {
		// Pure-selection query (e.g. SSSP's Edge("start",x)): decompose
		// everything together; constants are handled at the plan level.
		nonSel, sel = all, nil
	}
	d := &decomposer{h: h, memo: map[string]*scored{}}
	best := d.decompose(nonSel, nil)
	root := best.bag
	for _, se := range sel {
		root = attachSelection(h, root, se, !opts.NoPushdown)
	}
	return finish(h, root)
}

func finish(h *hypergraph.Hypergraph, root *Bag) *GHD {
	g := &GHD{H: h, Root: root}
	var visit func(b *Bag)
	visit = func(b *Bag) {
		g.Bags++
		if b.Width > g.Width {
			g.Width = b.Width
		}
		for _, c := range b.Children {
			visit(c)
		}
	}
	visit(root)
	return g
}

// attachSelection grafts a selection edge into the tree. With pushdown it
// becomes a child of the deepest bag covering its variables (executed
// first bottom-up); without, it becomes the parent of the shallowest bag
// covering its variables (executed last).
func attachSelection(h *hypergraph.Hypergraph, root *Bag, edge int, pushdown bool) *Bag {
	vars := h.Edges[edge].Vars
	covers := func(b *Bag) bool {
		chi := map[string]bool{}
		for _, v := range b.Vars {
			chi[v] = true
		}
		for _, v := range vars {
			if !chi[v] {
				return false
			}
		}
		return true
	}
	selBag := func() *Bag {
		return &Bag{Edges: []int{edge}, Vars: append([]string(nil), vars...),
			Width: h.Width(vars, []int{edge})}
	}
	if pushdown {
		// Deepest covering bag gets the selection as a child.
		var best *Bag
		bestDepth := -1
		var walk func(b *Bag, d int)
		walk = func(b *Bag, d int) {
			if covers(b) && d > bestDepth {
				best, bestDepth = b, d
			}
			for _, c := range b.Children {
				walk(c, d+1)
			}
		}
		walk(root, 0)
		if best == nil {
			best = root
		}
		best.Children = append(best.Children, selBag())
		return root
	}
	// No pushdown: parent of the shallowest covering bag.
	var target *Bag
	var walk func(b *Bag, d int) int
	found := math.MaxInt32
	walk = func(b *Bag, d int) int {
		if covers(b) && d < found {
			target = b
			found = d
		}
		for _, c := range b.Children {
			walk(c, d+1)
		}
		return found
	}
	walk(root, 0)
	if target == nil {
		target = root
	}
	nb := selBag()
	if target == root {
		nb.Children = []*Bag{root}
		return nb
	}
	var replace func(b *Bag)
	replace = func(b *Bag) {
		for i, c := range b.Children {
			if c == target {
				nb.Children = []*Bag{target}
				b.Children[i] = nb
				return
			}
			replace(c)
		}
	}
	replace(root)
	return root
}

// scored is a candidate subtree with its ranking metrics.
type scored struct {
	bag   *Bag
	width float64 // max bag width in subtree
	bags  int
	depth int
}

type decomposer struct {
	h    *hypergraph.Hypergraph
	memo map[string]*scored
}

func key(edges []int, boundary []string) string {
	var sb strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d,", e)
	}
	sb.WriteString("|")
	for _, v := range boundary {
		sb.WriteString(v)
		sb.WriteString(",")
	}
	return sb.String()
}

// decompose finds the best decomposition of the given edges whose root bag
// covers all boundary variables.
func (d *decomposer) decompose(edges []int, boundary []string) *scored {
	k := key(edges, boundary)
	if s, ok := d.memo[k]; ok {
		return s
	}
	var best *scored
	n := len(edges)
	// Enumerate non-empty subsets of edges as the root bag's λ.
	for mask := 1; mask < (1 << n); mask++ {
		var lambda []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				lambda = append(lambda, edges[i])
			}
		}
		bag := newBag(d.h, lambda, boundary)
		if bag == nil {
			continue // boundary not covered
		}
		chi := map[string]bool{}
		for _, v := range bag.Vars {
			chi[v] = true
		}
		var rest []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				rest = append(rest, edges[i])
			}
		}
		cand := &scored{bag: bag, width: bag.Width, bags: 1, depth: 0}
		ok := true
		if len(rest) > 0 {
			comps := d.h.ConnectedComponents(rest, chi)
			for _, comp := range comps {
				cb := d.sharedVars(comp, chi)
				child := d.decompose(comp, cb)
				if child == nil {
					ok = false
					break
				}
				cloned := cloneBag(child.bag)
				cand.bag.Children = append(cand.bag.Children, cloned)
				if child.width > cand.width {
					cand.width = child.width
				}
				cand.bags += child.bags
				if child.depth+1 > cand.depth {
					cand.depth = child.depth + 1
				}
			}
		}
		if !ok {
			continue
		}
		if best == nil || better(cand, best) {
			best = cand
		}
	}
	d.memo[k] = best
	return best
}

// cloneBag deep-copies a bag subtree so memoized results can be shared.
func cloneBag(b *Bag) *Bag {
	nb := &Bag{
		Edges: append([]int(nil), b.Edges...),
		Vars:  append([]string(nil), b.Vars...),
		Width: b.Width,
	}
	for _, c := range b.Children {
		nb.Children = append(nb.Children, cloneBag(c))
	}
	return nb
}

func (d *decomposer) sharedVars(comp []int, chi map[string]bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, ei := range comp {
		for _, v := range d.h.Edges[ei].Vars {
			if chi[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// better ranks candidates: smaller width first (the fhw objective of
// §3.2), then fewer bags (cheaper Yannakakis passes), then shallower
// trees (more parallelism, and the Fig. 3c star over a chain).
func better(a, b *scored) bool {
	if math.Abs(a.width-b.width) > 1e-9 {
		return a.width < b.width
	}
	if a.bags != b.bags {
		return a.bags < b.bags
	}
	return a.depth < b.depth
}

// newBag builds a bag over lambda; returns nil if the boundary variables
// are not all covered by lambda's variables.
func newBag(h *hypergraph.Hypergraph, lambda []int, boundary []string) *Bag {
	seen := map[string]bool{}
	var vars []string
	for _, ei := range lambda {
		for _, v := range h.Edges[ei].Vars {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	for _, bv := range boundary {
		if !seen[bv] {
			return nil
		}
	}
	return &Bag{Edges: lambda, Vars: vars, Width: h.Width(vars, lambda)}
}

// SelectionDepth is the sum over selection bags of their depths; larger
// means selections execute earlier in the bottom-up pass (App. B.1.1).
func (g *GHD) SelectionDepth(selectionEdges []int) int {
	isSel := map[int]bool{}
	for _, e := range selectionEdges {
		isSel[e] = true
	}
	total := 0
	var visit func(b *Bag, d int)
	visit = func(b *Bag, d int) {
		for _, ei := range b.Edges {
			if isSel[ei] {
				total += d
				break
			}
		}
		for _, c := range b.Children {
			visit(c, d+1)
		}
	}
	visit(g.Root, 0)
	return total
}

// AttributeOrder computes the global attribute order by a pre-order
// traversal of the GHD, appending each bag's variables in bag order
// (§3.2 "Global Attribute Ordering"). Variables in the selected set come
// first within each bag (Appendix B.1 "Within a Node").
func (g *GHD) AttributeOrder(selected map[string]bool) []string {
	var order []string
	seen := map[string]bool{}
	var visit func(b *Bag)
	visit = func(b *Bag) {
		for pass := 0; pass < 2; pass++ {
			for _, v := range b.Vars {
				isSel := selected != nil && selected[v]
				if (pass == 0) == isSel && !seen[v] {
					seen[v] = true
					order = append(order, v)
				}
			}
		}
		for _, c := range b.Children {
			visit(c)
		}
	}
	visit(g.Root)
	return order
}

// EquivalentSignature returns a canonical signature of a bag's subtree:
// two bags with equal signatures join identical relations with identical
// sub-results and produce identical output (Appendix B.2 "Eliminating
// Redundant Work"). Variable names are canonicalized positionally.
func (g *GHD) EquivalentSignature(b *Bag) string {
	rename := map[string]string{}
	next := 0
	var canon func(b *Bag) string
	canon = func(b *Bag) string {
		var parts []string
		for _, ei := range b.Edges {
			e := g.H.Edges[ei]
			vs := make([]string, len(e.Vars))
			for i, v := range e.Vars {
				if _, ok := rename[v]; !ok {
					rename[v] = fmt.Sprintf("v%d", next)
					next++
				}
				vs[i] = rename[v]
			}
			parts = append(parts, e.Rel+"("+strings.Join(vs, ",")+")")
		}
		sort.Strings(parts)
		var kids []string
		for _, c := range b.Children {
			kids = append(kids, canon(c))
		}
		sort.Strings(kids)
		return strings.Join(parts, ",") + "{" + strings.Join(kids, ";") + "}"
	}
	return canon(b)
}

// String renders the GHD, one bag per line, for debugging and tests.
func (g *GHD) String() string {
	var sb strings.Builder
	var visit func(b *Bag, depth int)
	visit = func(b *Bag, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		var rels []string
		for _, ei := range b.Edges {
			rels = append(rels, g.H.Edges[ei].Rel)
		}
		fmt.Fprintf(&sb, "λ:%s χ:%s (w=%.2f)\n",
			strings.Join(rels, ","), strings.Join(b.Vars, ","), b.Width)
		for _, c := range b.Children {
			visit(c, depth+1)
		}
	}
	visit(g.Root, 0)
	return sb.String()
}

// Validate checks the three GHD properties of Definition 1; it is used by
// tests and the engine's own assertions.
func (g *GHD) Validate() error {
	covered := make([]bool, len(g.H.Edges))
	var bags []*Bag
	var collect func(b *Bag)
	collect = func(b *Bag) {
		bags = append(bags, b)
		for _, c := range b.Children {
			collect(c)
		}
	}
	collect(g.Root)
	for _, b := range bags {
		chi := map[string]bool{}
		for _, v := range b.Vars {
			chi[v] = true
		}
		// Property 1: every edge appears in some bag with its vars ⊆ χ.
		for _, ei := range b.Edges {
			all := true
			for _, v := range g.H.Edges[ei].Vars {
				if !chi[v] {
					all = false
				}
			}
			if all {
				covered[ei] = true
			}
		}
		// Property 3: χ(v) ⊆ ∪λ(v).
		lamVars := map[string]bool{}
		for _, ei := range b.Edges {
			for _, v := range g.H.Edges[ei].Vars {
				lamVars[v] = true
			}
		}
		for _, v := range b.Vars {
			if !lamVars[v] {
				return fmt.Errorf("ghd: χ var %s not in ∪λ", v)
			}
		}
	}
	for ei, ok := range covered {
		if !ok {
			return fmt.Errorf("ghd: edge %s not covered by any bag", g.H.Edges[ei].Name)
		}
	}
	// Property 2 (running intersection): bags containing each var form a
	// connected subtree.
	for _, v := range g.H.Vars() {
		if !connectedFor(g.Root, v) {
			return fmt.Errorf("ghd: variable %s violates running intersection", v)
		}
	}
	return nil
}

// connectedFor checks the running-intersection property for variable v.
func connectedFor(b *Bag, v string) bool {
	var has func(b *Bag) bool
	has = func(b *Bag) bool {
		for _, x := range b.Vars {
			if x == v {
				return true
			}
		}
		for _, c := range b.Children {
			if has(c) {
				return true
			}
		}
		return false
	}
	var check func(b *Bag) bool
	check = func(b *Bag) bool {
		inSelf := false
		for _, x := range b.Vars {
			if x == v {
				inSelf = true
			}
		}
		n := 0
		for _, c := range b.Children {
			if has(c) {
				n++
				if !check(c) {
					return false
				}
			}
		}
		if !inSelf {
			return n <= 1
		}
		// v in this bag: every child subtree containing v must contain it
		// in the child root for the block to be connected through here.
		for _, c := range b.Children {
			if has(c) {
				inChild := false
				for _, x := range c.Vars {
					if x == v {
						inChild = true
					}
				}
				if !inChild {
					return false
				}
			}
		}
		return true
	}
	return check(b)
}
