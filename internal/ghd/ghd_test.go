package ghd

import (
	"math"
	"strings"
	"testing"

	"emptyheaded/internal/hypergraph"
)

func edge(name, rel string, size float64, vars ...string) hypergraph.Edge {
	return hypergraph.Edge{Name: name, Rel: rel, Vars: vars, Size: size}
}

func triangleH() *hypergraph.Hypergraph {
	return hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 100, "x", "y"),
		edge("S#1", "S", 100, "y", "z"),
		edge("T#2", "T", 100, "x", "z"),
	})
}

func barbellH() *hypergraph.Hypergraph {
	return hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 100, "x", "y"),
		edge("S#1", "S", 100, "y", "z"),
		edge("T#2", "T", 100, "x", "z"),
		edge("U#3", "U", 100, "x", "x2"),
		edge("R2#4", "R", 100, "x2", "y2"),
		edge("S2#5", "S", 100, "y2", "z2"),
		edge("T2#6", "T", 100, "x2", "z2"),
	})
}

func lollipopH() *hypergraph.Hypergraph {
	return hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 100, "x", "y"),
		edge("S#1", "S", 100, "y", "z"),
		edge("T#2", "T", 100, "x", "z"),
		edge("U#3", "U", 100, "x", "w"),
	})
}

func fourCliqueH() *hypergraph.Hypergraph {
	return hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 100, "x", "y"),
		edge("S#1", "S", 100, "y", "z"),
		edge("T#2", "T", 100, "x", "z"),
		edge("U#3", "U", 100, "x", "w"),
		edge("V#4", "V", 100, "y", "w"),
		edge("Q#5", "Q", 100, "z", "w"),
	})
}

func TestTriangleGHD(t *testing.T) {
	g := Decompose(triangleH(), Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Bags != 1 {
		t.Fatalf("triangle bags=%d want 1\n%s", g.Bags, g)
	}
	if math.Abs(g.Width-1.5) > 1e-6 {
		t.Fatalf("triangle width=%v want 1.5", g.Width)
	}
}

func TestFourCliqueGHD(t *testing.T) {
	// "GHD optimizations do not matter on the K4 query as the optimal
	// query plan is a single node GHD" (§5.3.1).
	g := Decompose(fourCliqueH(), Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Bags != 1 {
		t.Fatalf("4-clique bags=%d want 1\n%s", g.Bags, g)
	}
	if math.Abs(g.Width-2.0) > 1e-6 {
		t.Fatalf("4-clique width=%v want 2", g.Width)
	}
}

func TestLollipopGHD(t *testing.T) {
	g := Decompose(lollipopH(), Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Bags != 2 {
		t.Fatalf("lollipop bags=%d want 2\n%s", g.Bags, g)
	}
	if math.Abs(g.Width-1.5) > 1e-6 {
		t.Fatalf("lollipop width=%v want 1.5", g.Width)
	}
}

func TestBarbellGHD(t *testing.T) {
	// Figure 3c: triangle bags hang off the U(x,x') bag; width 3/2,
	// versus width 3 for the single-bag plan (Fig. 3b).
	g := Decompose(barbellH(), Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Width-1.5) > 1e-6 {
		t.Fatalf("barbell width=%v want 1.5\n%s", g.Width, g)
	}
	if g.Bags != 3 {
		t.Fatalf("barbell bags=%d want 3\n%s", g.Bags, g)
	}

	single := Decompose(barbellH(), Options{SingleBag: true})
	if single.Bags != 1 {
		t.Fatalf("single-bag option ignored: %d bags", single.Bags)
	}
	if math.Abs(single.Width-3.0) > 1e-6 {
		t.Fatalf("single-bag barbell width=%v want 3", single.Width)
	}
	if err := single.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbellRedundantBags(t *testing.T) {
	// The two triangle bags of the Barbell GHD are equivalent
	// (Appendix B.2): same relations, same structure.
	g := Decompose(barbellH(), Options{})
	var triBags []*Bag
	var visit func(b *Bag)
	visit = func(b *Bag) {
		if len(b.Edges) == 3 {
			triBags = append(triBags, b)
		}
		for _, c := range b.Children {
			visit(c)
		}
	}
	visit(g.Root)
	if len(triBags) != 2 {
		t.Fatalf("found %d triangle bags, want 2\n%s", len(triBags), g)
	}
	s0 := g.EquivalentSignature(triBags[0])
	s1 := g.EquivalentSignature(triBags[1])
	if s0 != s1 {
		t.Fatalf("triangle bags not detected equivalent:\n%s\n%s", s0, s1)
	}
}

func TestAttributeOrderPreOrder(t *testing.T) {
	g := Decompose(lollipopH(), Options{})
	order := g.AttributeOrder(nil)
	if len(order) != 4 {
		t.Fatalf("order=%v", order)
	}
	seen := map[string]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate attr %s in %v", v, order)
		}
		seen[v] = true
	}
	for _, v := range []string{"x", "y", "z", "w"} {
		if !seen[v] {
			t.Fatalf("missing attr %s in %v", v, order)
		}
	}
}

func TestSelectionPushdown(t *testing.T) {
	// 4-clique selection query (Fig. 8 / Table 12): P(x,'node') should be
	// pushed below the clique bag when pushdown is enabled, and grafted
	// above it (executed last) when disabled.
	h := hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 1000, "x", "y"),
		edge("S#1", "S", 1000, "y", "z"),
		edge("T#2", "T", 1000, "x", "z"),
		edge("U#3", "U", 1000, "x", "w"),
		edge("V#4", "V", 1000, "y", "w"),
		edge("Q#5", "Q", 1000, "z", "w"),
		edge("P#6", "P", 10, "x"),
	})
	selEdges := []int{6}
	g := Decompose(h, Options{SelectionEdges: selEdges})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Bags != 2 {
		t.Fatalf("pushdown bags=%d want 2\n%s", g.Bags, g)
	}
	// Pushdown: P is a leaf below the clique bag (Fig. 8b).
	if len(g.Root.Edges) != 6 || len(g.Root.Children) != 1 ||
		g.Root.Children[0].Edges[0] != 6 {
		t.Fatalf("pushdown shape wrong:\n%s", g)
	}
	gNo := Decompose(h, Options{SelectionEdges: selEdges, NoPushdown: true})
	if err := gNo.Validate(); err != nil {
		t.Fatal(err)
	}
	// No pushdown: P is the root; the clique computes below it (Fig. 8a).
	if gNo.Root.Edges[0] != 6 || len(gNo.Root.Children) != 1 {
		t.Fatalf("no-pushdown shape wrong:\n%s", gNo)
	}
	if g.SelectionDepth(selEdges) <= gNo.SelectionDepth(selEdges) {
		t.Fatalf("pushdown depth %d should exceed no-pushdown %d",
			g.SelectionDepth(selEdges), gNo.SelectionDepth(selEdges))
	}
	// Attribute order puts the selected variable first.
	order := g.AttributeOrder(map[string]bool{"x": true})
	if order[0] != "x" {
		t.Fatalf("selected attr not first: %v", order)
	}
}

func TestBarbellSelectionPushdown(t *testing.T) {
	// Barbell selection (Table 12): U(x,'node'), V('node',x2) become unary
	// selection atoms; with pushdown each hangs under its triangle.
	h := hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 1000, "x", "y"),
		edge("S#1", "S", 1000, "y", "z"),
		edge("T#2", "T", 1000, "x", "z"),
		edge("U#3", "U", 20, "x"),
		edge("V#4", "V", 20, "x2"),
		edge("R2#5", "R", 1000, "x2", "y2"),
		edge("S2#6", "S", 1000, "y2", "z2"),
		edge("T2#7", "T", 1000, "x2", "z2"),
	})
	selEdges := []int{3, 4}
	g := Decompose(h, Options{SelectionEdges: selEdges})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Bags != 4 {
		t.Fatalf("bags=%d want 4\n%s", g.Bags, g)
	}
	if g.Width > 1.5+1e-9 {
		t.Fatalf("width=%v want 1.5\n%s", g.Width, g)
	}
	gNo := Decompose(h, Options{SelectionEdges: selEdges, NoPushdown: true})
	if err := gNo.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, gNo)
	}
	if g.SelectionDepth(selEdges) <= gNo.SelectionDepth(selEdges) {
		t.Fatalf("pushdown depth %d should exceed no-pushdown %d\n%s\n%s",
			g.SelectionDepth(selEdges), gNo.SelectionDepth(selEdges), g, gNo)
	}
}

func TestValidateCatchesBadGHD(t *testing.T) {
	h := triangleH()
	// A broken "decomposition" that drops edge S.
	bad := &GHD{H: h, Root: &Bag{Edges: []int{0, 2}, Vars: []string{"x", "y", "z"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a GHD that does not cover all edges")
	}
	// Running-intersection violation: x in two leaves but not the root.
	h2 := hypergraph.New([]hypergraph.Edge{
		edge("A#0", "A", 10, "x", "y"),
		edge("B#1", "B", 10, "x", "z"),
		edge("C#2", "C", 10, "y", "z"),
	})
	bad2 := &GHD{H: h2, Root: &Bag{
		Edges: []int{2}, Vars: []string{"y", "z"},
		Children: []*Bag{
			{Edges: []int{0}, Vars: []string{"x", "y"}},
			{Edges: []int{1}, Vars: []string{"x", "z"}},
		},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate accepted a running-intersection violation")
	}
}

func TestPathQueryGHD(t *testing.T) {
	// Acyclic 3-path R(a,b),S(b,c),T(c,d): fhw = 1.
	h := hypergraph.New([]hypergraph.Edge{
		edge("R#0", "R", 100, "a", "b"),
		edge("S#1", "S", 100, "b", "c"),
		edge("T#2", "T", 100, "c", "d"),
	})
	g := Decompose(h, Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Width-1.0) > 1e-6 {
		t.Fatalf("path width=%v want 1\n%s", g.Width, g)
	}
}

func TestGHDStringRendersBags(t *testing.T) {
	g := Decompose(triangleH(), Options{})
	s := g.String()
	if !strings.Contains(s, "λ:") || !strings.Contains(s, "χ:") {
		t.Fatalf("String() = %q", s)
	}
}
