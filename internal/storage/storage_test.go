package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// testSnapshot builds a small multi-relation database: a binary edge
// relation, an annotated unary relation, a ternary relation, a scalar,
// and a dictionary.
func testSnapshot(t *testing.T, layout trie.LayoutFunc) *Snapshot {
	t.Helper()
	g := gen.PowerLaw(500, 4000, 2.2, 7)
	edge := trie.FromAdjacency(g.Adj, layout)

	rb := trie.NewColumnarBuilder(1, semiring.Sum, layout)
	for i := 0; i < 300; i++ {
		rb.AddAnn(float64(i)*0.5, uint32(i*3))
	}
	ranks := rb.Build()

	tb := trie.NewColumnarBuilder(3, semiring.None, layout)
	for i := 0; i < 1000; i++ {
		tb.Add(uint32(i%17), uint32(i%39), uint32(i%71))
	}
	triples := tb.Build()

	dict := graph.NewDictionary()
	for i := 0; i < g.N; i++ {
		dict.Encode(int64(i * 10))
	}

	return &Snapshot{
		Relations: []Relation{
			{Name: "Edge", Trie: edge, Epoch: 3},
			{Name: "Rank", Trie: ranks, Epoch: 7},
			{Name: "Triple", Trie: triples, Epoch: 1},
			{Name: "N", Trie: trie.NewScalar(float64(g.N), semiring.Sum), Epoch: 2},
		},
		Dict:      dict,
		DictEpoch: 5,
	}
}

func tupleDump(t *trie.Trie) string {
	var sb bytes.Buffer
	t.ForEachTuple(func(tp []uint32, ann float64) {
		fmt.Fprintf(&sb, "%v:%g;", tp, ann)
	})
	return sb.String()
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, lc := range []struct {
		name   string
		layout trie.LayoutFunc
	}{{"auto", trie.AutoLayout}, {"uint", trie.UintLayout}, {"bitset", trie.BitsetLayout}, {"composite", trie.CompositeLayout}} {
		t.Run(lc.name, func(t *testing.T) {
			dir := t.TempDir()
			snap := testSnapshot(t, lc.layout)
			cat, err := Write(dir, snap)
			if err != nil {
				t.Fatalf("Write: %v", err)
			}
			if len(cat.Relations) != 4 || cat.Dict == nil {
				t.Fatalf("catalog: %+v", cat)
			}

			db, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer db.Close()
			for _, rel := range snap.Relations {
				got, ok := db.Tries[rel.Name]
				if !ok {
					t.Fatalf("relation %s missing after restore", rel.Name)
				}
				if tupleDump(got) != tupleDump(rel.Trie) {
					t.Fatalf("relation %s: tuples differ after restore", rel.Name)
				}
				if db.Epochs[rel.Name] != rel.Epoch {
					t.Fatalf("relation %s: epoch %d, want %d", rel.Name, db.Epochs[rel.Name], rel.Epoch)
				}
			}
			if db.Dict == nil || db.Dict.Len() != snap.Dict.Len() {
				t.Fatal("dictionary lost")
			}
			if db.Dict.Decode(3) != 30 {
				t.Fatalf("dict decode(3)=%d want 30", db.Dict.Decode(3))
			}
			if c, ok := db.Dict.Lookup(30); !ok || c != 3 {
				t.Fatalf("dict lookup(30)=%d,%v want 3,true", c, ok)
			}
			if db.Catalog.DictEpoch != 5 {
				t.Fatalf("dict epoch %d want 5", db.Catalog.DictEpoch)
			}
		})
	}
}

// TestReSnapshotByteIdentical: restore then re-snapshot must reproduce
// every file byte for byte.
func TestReSnapshotByteIdentical(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	snap := testSnapshot(t, trie.AutoLayout)
	if _, err := Write(dir1, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	db, err := Open(dir1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	var rels []Relation
	for name, tr := range db.Tries {
		rels = append(rels, Relation{Name: name, Trie: tr, Epoch: db.Epochs[name]})
	}
	if _, err := Write(dir2, &Snapshot{Relations: rels, Dict: db.Dict, DictEpoch: db.Catalog.DictEpoch}); err != nil {
		t.Fatalf("re-Write: %v", err)
	}

	files1, _ := os.ReadDir(dir1)
	for _, f := range files1 {
		b1, err := os.ReadFile(filepath.Join(dir1, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(dir2, f.Name()))
		if err != nil {
			t.Fatalf("file %s missing from re-snapshot: %v", f.Name(), err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("file %s differs between snapshot and re-snapshot", f.Name())
		}
	}
}

func TestOverwriteRemovesStaleSegments(t *testing.T) {
	dir := t.TempDir()
	snap := testSnapshot(t, trie.AutoLayout)
	if _, err := Write(dir, snap); err != nil {
		t.Fatal(err)
	}
	// Second snapshot with fewer relations into the same directory.
	small := &Snapshot{Relations: snap.Relations[:1], Dict: snap.Dict}
	if _, err := Write(dir, small); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "rel-") && filepath.Ext(e.Name()) == ".seg" {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d relation segments after overwrite, want 1", segs)
	}
	if db, err := Open(dir); err != nil {
		t.Fatalf("Open after overwrite: %v", err)
	} else {
		db.Close()
	}
}

// segmentPath returns the on-disk path of the i'th catalog relation's
// segment.
func segmentPath(t *testing.T, dir string, i int) string {
	t.Helper()
	cat, err := ReadCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, cat.Relations[i].Segment)
}

// TestOverwriteNeverClobbersReferencedFiles: a snapshot over an existing
// directory must not rewrite any file the old catalog references with
// different bytes (changed payloads get new, checksum-derived names), so
// a crash before the new catalog lands leaves the old snapshot whole.
func TestOverwriteNeverClobbersReferencedFiles(t *testing.T) {
	dir := t.TempDir()
	snapA := testSnapshot(t, trie.AutoLayout)
	catA, err := Write(dir, snapA)
	if err != nil {
		t.Fatal(err)
	}
	oldFiles := map[string][]byte{}
	for _, rm := range catA.Relations {
		b, err := os.ReadFile(filepath.Join(dir, rm.Segment))
		if err != nil {
			t.Fatal(err)
		}
		oldFiles[rm.Segment] = b
	}

	// Different data under the same relation names.
	snapB := testSnapshot(t, trie.UintLayout)
	catB, err := Write(dir, snapB)
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range catB.Relations {
		if old, clash := oldFiles[rm.Segment]; clash {
			b, err := os.ReadFile(filepath.Join(dir, rm.Segment))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(old, b) {
				t.Fatalf("segment %s reused for different bytes — a crash mid-snapshot would corrupt the old catalog", rm.Segment)
			}
		}
	}
	if db, err := Open(dir); err != nil {
		t.Fatalf("Open after overwrite: %v", err)
	} else {
		db.Close()
	}
}

// TestCorruptedSegment flips bytes across a segment and requires restore
// to fail with a checksum CorruptionError rather than aliasing garbage.
func TestCorruptedSegment(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testSnapshot(t, trie.AutoLayout)); err != nil {
		t.Fatal(err)
	}
	seg := segmentPath(t, dir, 0)
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{9, len(orig) / 3, len(orig) / 2, len(orig) - 2} {
		bad := append([]byte(nil), orig...)
		bad[pos] ^= 0xff
		if err := os.WriteFile(seg, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir)
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("corruption at byte %d: Open returned %v, want CorruptionError", pos, err)
		}
	}
}

// TestTruncatedSegment cuts a segment short; the catalog size check must
// catch it before any aliasing happens.
func TestTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testSnapshot(t, trie.AutoLayout)); err != nil {
		t.Fatal(err)
	}
	seg := segmentPath(t, dir, 1)
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 4, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(seg, orig[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir)
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: Open returned %v, want CorruptionError", keep, err)
		}
	}
}

func TestCorruptedCatalog(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testSnapshot(t, trie.AutoLayout)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CatalogFile)
	orig, _ := os.ReadFile(path)

	// Flip a byte inside the JSON payload.
	bad := append([]byte(nil), orig...)
	bad[len(bad)-3] ^= 0x20
	os.WriteFile(path, bad, 0o644)
	if _, err := ReadCatalog(dir); err == nil {
		t.Fatal("corrupted catalog accepted")
	}

	// Unsupported version.
	os.WriteFile(path, bytes.Replace(orig, []byte(" v1 "), []byte(" v9 "), 1), 0o644)
	if _, err := ReadCatalog(dir); err == nil {
		t.Fatal("future-version catalog accepted")
	}

	// Missing catalog.
	os.Remove(path)
	if Exists(dir) {
		t.Fatal("Exists true without catalog")
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open without catalog succeeded")
	}
}
