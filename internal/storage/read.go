package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"unsafe"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/trie"
)

// ReadCatalog reads and verifies just the catalog of a snapshot
// directory (the cheap metadata pass used by eh-snap -stats and by boot
// probing).
func ReadCatalog(dir string) (*Catalog, error) {
	path := filepath.Join(dir, CatalogFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, corrupt(CatalogFile, "missing header line")
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	var version int
	var crc uint32
	var plen int
	if _, err := fmt.Sscanf(header, catalogMagic+" v%d crc32=%x len=%d", &version, &crc, &plen); err != nil ||
		!strings.HasPrefix(header, catalogMagic+" ") {
		return nil, corrupt(CatalogFile, "bad header %q", header)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("storage: %s: format version %d, this build reads v%d", CatalogFile, version, FormatVersion)
	}
	if plen != len(payload) {
		return nil, corrupt(CatalogFile, "payload length %d, header says %d", len(payload), plen)
	}
	if got := Checksum(payload); got != crc {
		return nil, corrupt(CatalogFile, "checksum %08x, header says %08x", got, crc)
	}
	cat := &Catalog{}
	if err := json.Unmarshal(payload, cat); err != nil {
		return nil, corrupt(CatalogFile, "catalog JSON: %v", err)
	}
	return cat, nil
}

// Exists reports whether dir holds a snapshot (a catalog file).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, CatalogFile))
	return err == nil
}

// Open restores a snapshot directory: the catalog is read and verified,
// every segment is mmap'd, its payload checksum verified (one sequential
// pass that also warms the page cache), and the tries are rebuilt with
// their flat buffers aliasing the mappings — zero copy. The returned
// Database keeps the mappings alive; see Database.Close.
func Open(dir string) (*Database, error) {
	cat, err := ReadCatalog(dir)
	if err != nil {
		return nil, err
	}
	db := &Database{
		Tries:      make(map[string]*trie.Trie, len(cat.Relations)),
		Epochs:     make(map[string]uint64, len(cat.Relations)),
		Watermarks: make(map[string]uint64, len(cat.Relations)),
		Catalog:    cat,
	}
	fail := func(err error) (*Database, error) {
		db.Close()
		return nil, err
	}
	for _, rm := range cat.Relations {
		payload, err := db.mapSegment(dir, rm.Segment, segMagic, rm.Bytes, rm.Checksum)
		if err != nil {
			return fail(err)
		}
		t, err := trie.FromBuffers(payload)
		if err != nil {
			return fail(corrupt(rm.Segment, "decode: %v", err))
		}
		if t.Arity != rm.Arity || t.Annotated != rm.Annotated {
			return fail(corrupt(rm.Segment, "segment shape (arity=%d ann=%v) disagrees with catalog (arity=%d ann=%v)",
				t.Arity, t.Annotated, rm.Arity, rm.Annotated))
		}
		if _, dup := db.Tries[rm.Name]; dup {
			return fail(corrupt(CatalogFile, "duplicate relation %q", rm.Name))
		}
		db.Tries[rm.Name] = t
		db.Epochs[rm.Name] = rm.Epoch
		db.Watermarks[rm.Name] = rm.WALSeq
	}
	if cat.Dict != nil {
		payload, err := db.mapSegment(dir, cat.Dict.Segment, dictMagic, cat.Dict.Bytes, cat.Dict.Checksum)
		if err != nil {
			return fail(err)
		}
		if len(payload) < 8 {
			return fail(corrupt(cat.Dict.Segment, "truncated dictionary header"))
		}
		count := int(binary.LittleEndian.Uint64(payload))
		if count != cat.Dict.Count || len(payload) < 8+8*count {
			return fail(corrupt(cat.Dict.Segment, "dictionary count %d disagrees with payload/catalog", count))
		}
		origs, err := aliasInt64s(payload[8:], count)
		if err != nil {
			return fail(corrupt(cat.Dict.Segment, "%v", err))
		}
		db.Dict = graph.DictFromOrigs(origs)
	}
	return db, nil
}

// mapSegment maps one segment file, validates magic + length + checksum,
// and returns the payload (the bytes after the magic), which aliases the
// mapping.
func (db *Database) mapSegment(dir, name, magic string, wantBytes int64, wantCRC uint32) ([]byte, error) {
	m, err := mapFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	db.mappings = append(db.mappings, m)
	data := m.data
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, corrupt(name, "bad segment magic")
	}
	payload := data[len(magic):]
	if int64(len(payload)) != wantBytes {
		return nil, corrupt(name, "payload is %d bytes, catalog says %d (truncated?)", len(payload), wantBytes)
	}
	if got := Checksum(payload); got != wantCRC {
		return nil, corrupt(name, "checksum %08x, catalog says %08x", got, wantCRC)
	}
	return payload, nil
}

// aliasInt64s views 8n bytes as []int64 without copying (with a copying
// fallback for misaligned buffers, which mmap never produces).
func aliasInt64s(b []byte, n int) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 8*n {
		return nil, fmt.Errorf("buffer too short for %d int64s", n)
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return out, nil
	}
	return unsafe.Slice((*int64)(p), n), nil
}

// CardinalityTotal sums the catalog's relation cardinalities (stat line
// helper for eh-snap and the server's snapshot endpoints).
func (c *Catalog) CardinalityTotal() int {
	total := 0
	for _, r := range c.Relations {
		total += r.Cardinality
	}
	return total
}

// BytesTotal sums segment payload sizes.
func (c *Catalog) BytesTotal() int64 {
	var total int64
	for _, r := range c.Relations {
		total += r.Bytes
	}
	if c.Dict != nil {
		total += c.Dict.Bytes
	}
	return total
}

// String renders a short human-readable catalog summary.
func (c *Catalog) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "snapshot v%d: %d relations, %d tuples, %d bytes",
		c.FormatVersion, len(c.Relations), c.CardinalityTotal(), c.BytesTotal())
	if c.Dict != nil {
		fmt.Fprintf(&sb, ", dict %d ids", c.Dict.Count)
	}
	if c.ProvFormat > 0 {
		fmt.Fprintf(&sb, ", prov v%d", c.ProvFormat)
	} else {
		sb.WriteString(", prov none (epoch-only lineage)")
	}
	return sb.String()
}
