// Package storage is EmptyHeaded's persistent storage engine: a
// versioned binary snapshot format for the whole database, designed
// around the same flat-buffer discipline as the in-memory tries so a
// restore is an mmap, not a rebuild.
//
// A snapshot is a directory:
//
//	catalog.eh          checksummed catalog: relations, arities, semiring
//	                    ops, per-relation epochs, per-segment checksums,
//	                    and a reference to the identifier dictionary
//	rel-NNNNN-CRC.seg   one segment per relation: the trie's flat buffers
//	                    (per-level set data, node offsets, annotation
//	                    columns) in fixed little-endian framing (see
//	                    trie.AppendTo); the name embeds the payload CRC
//	                    so re-snapshots never clobber referenced files
//	dict-CRC.seg        the identifier dictionary (code → original ids)
//
// Restore mmaps each segment and aliases []uint32 / []uint64 / []float64
// slices directly into the page cache (trie.FromBuffers); only the trie
// node structs are rebuilt, so a multi-gigabyte database is queryable in
// milliseconds. Every payload is covered by a CRC-32C recorded in the
// catalog, and the catalog itself is checksummed, so a torn or corrupted
// snapshot fails restore cleanly instead of aliasing garbage.
//
// docs/STORAGE.md specifies the format normatively.
package storage

import (
	"fmt"
	"hash/crc32"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/trie"
)

const (
	// FormatVersion is bumped on incompatible changes to the segment or
	// catalog framing; readers reject snapshots from other major versions.
	FormatVersion = 1

	// ProvFormatVersion versions the provenance fields inside the catalog
	// (per-relation WAL applied-seq watermarks). It rides inside the JSON
	// payload rather than the frame version: older readers ignore unknown
	// fields, and this build reads pre-provenance catalogs (ProvFormat 0)
	// by degrading to epoch-only lineage — watermarks restore as 0.
	ProvFormatVersion = 1

	// CatalogFile is the catalog's file name inside a snapshot directory.
	CatalogFile = "catalog.eh"
	// DictPrefix prefixes the identifier dictionary's segment file name
	// (the full name embeds the payload checksum, like relation segments,
	// so successive snapshots never overwrite a referenced file with
	// different bytes).
	DictPrefix = "dict-"

	catalogMagic = "EHCATALOG"
	// segMagic / dictMagic are 8-byte file headers, keeping the payload
	// that follows 8-byte aligned for zero-copy aliasing.
	segMagic  = "EHSEGv1\n"
	dictMagic = "EHDICT1\n"
)

// castagnoli is the CRC-32C table used for every snapshot checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of a payload.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Catalog describes a snapshot: one row per relation plus the dictionary
// reference. It doubles as the stats document printed by eh-snap.
type Catalog struct {
	FormatVersion int `json:"format_version"`
	// ProvFormat is the provenance-field version (see ProvFormatVersion);
	// 0 marks a pre-provenance catalog whose relations carry no WAL
	// watermarks (restores degrade to epoch-only lineage).
	ProvFormat int            `json:"prov_format,omitempty"`
	Relations  []RelationMeta `json:"relations"`
	Dict       *DictMeta      `json:"dict,omitempty"`
	// DictEpoch is the dictionary mutation epoch at snapshot time.
	DictEpoch uint64 `json:"dict_epoch,omitempty"`
}

// RelationMeta is one catalog row.
type RelationMeta struct {
	Name        string `json:"name"`
	Segment     string `json:"segment"`
	Arity       int    `json:"arity"`
	Annotated   bool   `json:"annotated,omitempty"`
	Op          string `json:"op,omitempty"`
	Cardinality int    `json:"cardinality"`
	// Epoch is the relation's mutation epoch at snapshot time.
	Epoch uint64 `json:"epoch"`
	// WALSeq is the relation's WAL applied-seq watermark at snapshot
	// time: the highest WAL sequence number reflected in the segment's
	// content. 0 in pre-provenance catalogs and for relations never
	// touched by a journaled update (epoch-only lineage).
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Bytes is the segment payload length (excluding the 8-byte magic).
	Bytes int64 `json:"bytes"`
	// Checksum is the CRC-32C of the segment payload.
	Checksum uint32 `json:"checksum"`
}

// DictMeta references the identifier dictionary segment.
type DictMeta struct {
	Segment  string `json:"segment"`
	Count    int    `json:"count"`
	Bytes    int64  `json:"bytes"`
	Checksum uint32 `json:"checksum"`
}

// Relation pairs a named trie with its mutation epoch and WAL
// applied-seq watermark for writing.
type Relation struct {
	Name   string
	Trie   *trie.Trie
	Epoch  uint64
	WALSeq uint64
}

// Snapshot is the write-side input: the full database state.
type Snapshot struct {
	Relations []Relation
	Dict      *graph.Dictionary
	DictEpoch uint64
}

// Database is the read-side result of Open: restored tries aliasing the
// mmap'd segments, plus the catalog they came from. Close unmaps the
// segments — only call it after every alias into them is dropped.
type Database struct {
	Tries  map[string]*trie.Trie
	Epochs map[string]uint64
	// Watermarks holds each relation's WAL applied-seq watermark from the
	// catalog; all zeros for a pre-provenance snapshot (epoch-only
	// lineage, see Catalog.ProvFormat).
	Watermarks map[string]uint64
	Dict       *graph.Dictionary
	Catalog    *Catalog

	mappings []mapping
}

// Close releases the segment mappings. The restored tries (and the
// dictionary) alias them, so Close is only safe once those are
// unreachable; a long-lived engine simply never calls it.
func (db *Database) Close() error {
	var first error
	for _, m := range db.mappings {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	db.mappings = nil
	return first
}

// CorruptionError marks restore failures caused by on-disk damage
// (checksum mismatch, truncation, bad magic) as opposed to I/O errors.
type CorruptionError struct {
	File   string
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("storage: %s: %s", e.File, e.Reason)
}

func corrupt(file, format string, args ...any) error {
	return &CorruptionError{File: file, Reason: fmt.Sprintf(format, args...)}
}
