//go:build unix

package storage

import (
	"os"
	"syscall"
)

// mapping is one mmap'd segment file.
type mapping struct {
	data   []byte
	mapped []byte // non-nil when data comes from mmap
}

// mapFile maps path read-only (private). The kernel pages the file in
// lazily through the page cache, which is what makes restore of a large
// snapshot near-instant; the checksum verification pass then faults the
// pages sequentially (readahead-friendly).
func mapFile(path string) (mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return mapping{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return mapping{}, err
	}
	size := st.Size()
	if size == 0 {
		return mapping{}, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Filesystems without mmap support (rare) fall back to a copy.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return mapping{}, rerr
		}
		return mapping{data: data}, nil
	}
	return mapping{data: b, mapped: b}, nil
}

func (m mapping) close() error {
	if m.mapped == nil {
		return nil
	}
	return syscall.Munmap(m.mapped)
}
