//go:build !unix

package storage

import "os"

// mapping holds a fully read segment on platforms without mmap.
type mapping struct {
	data []byte
}

// mapFile reads the whole file — the portable fallback; restore is still
// one sequential read plus zero-copy aliasing into the buffer.
func mapFile(path string) (mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return mapping{}, err
	}
	return mapping{data: data}, nil
}

func (m mapping) close() error { return nil }
