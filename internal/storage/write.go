package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"emptyheaded/internal/fault"
)

// fsys routes the snapshot write path's file operations; SetFS swaps in
// a fault-injecting implementation. The read/mmap path is untouched.
var fsys fault.FS = fault.OS

// SetFS overrides the filesystem behind the snapshot write path (fault
// injection in chaos tests) and returns a restore function. Not safe
// to call with writes in flight.
func SetFS(fs fault.FS) (restore func()) {
	old := fsys
	if fs == nil {
		fs = fault.OS
	}
	fsys = fs
	return func() { fsys = old }
}

// Write serializes snap into dir (created if absent) and returns the
// catalog. Segment file names embed the payload checksum, so a new
// snapshot over an existing directory never overwrites a file the old
// catalog references unless the content is byte-identical; the
// checksummed catalog is renamed into place last and stale segments are
// removed only after that. A crash or write error at any point
// therefore leaves the directory restorable: either the old catalog
// with all its segments intact, or the new one with all of its.
//
// The encoding is deterministic: the same database state always produces
// byte-identical files under identical names (relations are ordered by
// name, names derive from content, and no timestamps are recorded),
// which is what makes snapshot → restore → re-snapshot byte-identity
// testable.
func Write(dir string, snap *Snapshot) (*Catalog, error) {
	return WriteIncremental(dir, snap, nil)
}

// WriteIncremental is Write with segment reuse: relations whose epoch
// equals their row in prev (the catalog a previous Write to the same
// directory returned, or Open read from it) keep their existing
// segment file — the new catalog references it verbatim and the trie is
// not re-serialized. Epochs are only meaningful within one engine
// lifetime (restores adopt them, mutations strictly advance them), so
// callers must pass a prev catalog they themselves wrote to or restored
// from this directory; a foreign catalog could alias unrelated content
// behind a coincidentally equal epoch.
func WriteIncremental(dir string, snap *Snapshot, prev *Catalog) (*Catalog, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rels := append([]Relation(nil), snap.Relations...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })

	prevRels := map[string]RelationMeta{}
	if prev != nil {
		for _, rm := range prev.Relations {
			prevRels[rm.Name] = rm
		}
	}

	cat := &Catalog{FormatVersion: FormatVersion, ProvFormat: ProvFormatVersion, DictEpoch: snap.DictEpoch}
	written := map[string]bool{CatalogFile: true}
	for i, rel := range rels {
		if rel.Trie == nil {
			return nil, fmt.Errorf("storage: relation %s has no trie", rel.Name)
		}
		if pm, ok := prevRels[rel.Name]; ok && pm.Epoch == rel.Epoch && segmentIntact(dir, pm.Segment, pm.Bytes) {
			// Epoch unchanged since the prev catalog: the relation was
			// not replaced, so its segment bytes are still its state. The
			// watermark is reused too — it only advances through journaled
			// updates, each of which also bumps the epoch.
			written[pm.Segment] = true
			cat.Relations = append(cat.Relations, pm)
			continue
		}
		payload := rel.Trie.AppendTo(nil)
		crc := Checksum(payload)
		seg := fmt.Sprintf("rel-%05d-%08x.seg", i, crc)
		if err := writeSegment(filepath.Join(dir, seg), segMagic, payload); err != nil {
			return nil, err
		}
		written[seg] = true
		cat.Relations = append(cat.Relations, RelationMeta{
			Name:        rel.Name,
			Segment:     seg,
			Arity:       rel.Trie.Arity,
			Annotated:   rel.Trie.Annotated,
			Op:          rel.Trie.Op.String(),
			Cardinality: rel.Trie.Cardinality(),
			Epoch:       rel.Epoch,
			WALSeq:      rel.WALSeq,
			Bytes:       int64(len(payload)),
			Checksum:    crc,
		})
	}
	if snap.Dict != nil && prev != nil && prev.Dict != nil &&
		prev.DictEpoch == snap.DictEpoch && prev.Dict.Count == snap.Dict.Len() &&
		segmentIntact(dir, prev.Dict.Segment, prev.Dict.Bytes) {
		written[prev.Dict.Segment] = true
		cat.Dict = prev.Dict
	} else if snap.Dict != nil {
		origs := snap.Dict.Origs()
		payload := make([]byte, 0, 8+8*len(origs))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(origs)))
		for _, o := range origs {
			payload = binary.LittleEndian.AppendUint64(payload, uint64(o))
		}
		crc := Checksum(payload)
		seg := fmt.Sprintf("%s%08x.seg", DictPrefix, crc)
		if err := writeSegment(filepath.Join(dir, seg), dictMagic, payload); err != nil {
			return nil, err
		}
		written[seg] = true
		cat.Dict = &DictMeta{
			Segment:  seg,
			Count:    len(origs),
			Bytes:    int64(len(payload)),
			Checksum: crc,
		}
	}

	if err := writeCatalog(filepath.Join(dir, CatalogFile), cat); err != nil {
		return nil, err
	}
	removeStaleSegments(dir, written)
	return cat, nil
}

// segmentIntact reports whether a reusable segment file is present with
// the expected payload size. Content integrity is already pinned by the
// name-embedded checksum discipline (a segment is never overwritten
// with different bytes) and verified again at restore.
func segmentIntact(dir, name string, payloadBytes int64) bool {
	st, err := os.Stat(filepath.Join(dir, name))
	return err == nil && st.Size() == payloadBytes+int64(len(segMagic))
}

// writeSegment writes magic + payload atomically (temp file + rename).
func writeSegment(path, magic string, payload []byte) error {
	buf := make([]byte, 0, len(magic)+len(payload))
	buf = append(buf, magic...)
	buf = append(buf, payload...)
	return atomicWrite(path, buf)
}

// writeCatalog renders the catalog as a checksummed header line plus a
// JSON payload:
//
//	EHCATALOG v1 crc32=XXXXXXXX len=N
//	{ ...json... }
func writeCatalog(path string, cat *Catalog) error {
	payload, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	header := fmt.Sprintf("%s v%d crc32=%08x len=%d\n", catalogMagic, FormatVersion, Checksum(payload), len(payload))
	return atomicWrite(path, append([]byte(header), payload...))
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// removeStaleSegments deletes segment files left behind by an earlier
// snapshot of the same directory, after the new catalog is in place
// (best effort — the new catalog never references them, so a failed
// removal is dead weight, not a correctness issue).
func removeStaleSegments(dir string, written map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if written[name] || e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".seg") &&
			(strings.HasPrefix(name, "rel-") || strings.HasPrefix(name, DictPrefix)) {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
