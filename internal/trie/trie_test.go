package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

func TestBuildAndLookup(t *testing.T) {
	// The Fig. 2 example: (managerID, employeeID) annotated with ratings,
	// after dictionary encoding.
	b := NewBuilder(2, semiring.Sum, nil)
	b.AddAnn(1.7, 0, 4)
	b.AddAnn(3.8, 1, 0)
	b.AddAnn(9.5, 0, 3)
	b.AddAnn(6.4, 2, 1)
	tr := b.Build()

	if tr.Arity != 2 || !tr.Annotated {
		t.Fatalf("arity=%d annotated=%v", tr.Arity, tr.Annotated)
	}
	if got := tr.Cardinality(); got != 4 {
		t.Fatalf("card=%d want 4", got)
	}
	if got := tr.Root.Set.Slice(); !reflect.DeepEqual(got, []uint32{0, 1, 2}) {
		t.Fatalf("level0 = %v", got)
	}
	c0 := tr.Root.Child(0)
	if c0 == nil || !reflect.DeepEqual(c0.Set.Slice(), []uint32{3, 4}) {
		t.Fatalf("children of 0 = %v", c0)
	}
	if ann, ok := c0.AnnOf(3, tr.Op); !ok || ann != 9.5 {
		t.Fatalf("ann(0,3) = %v,%v", ann, ok)
	}
	if ann, ok := c0.AnnOf(4, tr.Op); !ok || ann != 1.7 {
		t.Fatalf("ann(0,4) = %v,%v", ann, ok)
	}
	if tr.Root.Child(3) != nil {
		t.Fatal("Child(3) should be nil")
	}
}

func TestDuplicateAnnotationsCombine(t *testing.T) {
	b := NewBuilder(1, semiring.Sum, nil)
	b.AddAnn(2, 7)
	b.AddAnn(5, 7)
	b.AddAnn(1, 9)
	tr := b.Build()
	if tr.Cardinality() != 2 {
		t.Fatalf("card=%d", tr.Cardinality())
	}
	if ann, _ := tr.Root.AnnOf(7, tr.Op); ann != 7 {
		t.Fatalf("SUM dedup ann=%v want 7", ann)
	}

	bm := NewBuilder(1, semiring.Min, nil)
	bm.AddAnn(5, 7)
	bm.AddAnn(2, 7)
	trm := bm.Build()
	if ann, _ := trm.Root.AnnOf(7, trm.Op); ann != 2 {
		t.Fatalf("MIN dedup ann=%v want 2", ann)
	}
}

func TestScalarTrie(t *testing.T) {
	s := NewScalar(42, semiring.Sum)
	if s.Arity != 0 || s.Scalar != 42 || s.Cardinality() != 1 {
		t.Fatalf("scalar trie wrong: %+v", s)
	}
	b := NewBuilder(0, semiring.Count, nil)
	b.AddAnn(1)
	b.AddAnn(1)
	b.AddAnn(1)
	tr := b.Build()
	if tr.Scalar != 3 {
		t.Fatalf("count scalar = %v", tr.Scalar)
	}
}

func TestForEachTupleOrder(t *testing.T) {
	b := NewBuilder(3, semiring.None, nil)
	tuples := [][]uint32{{2, 1, 1}, {0, 0, 0}, {0, 1, 5}, {0, 1, 2}, {2, 0, 9}}
	for _, tp := range tuples {
		b.Add(tp...)
	}
	tr := b.Build()
	var got [][]uint32
	tr.ForEachTuple(func(tp []uint32, _ float64) {
		got = append(got, append([]uint32(nil), tp...))
	})
	want := [][]uint32{{0, 0, 0}, {0, 1, 2}, {0, 1, 5}, {2, 0, 9}, {2, 1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFromAdjacency(t *testing.T) {
	adj := [][]uint32{
		0: {1, 2},
		1: {2},
		2: nil,
		3: {0, 1, 2},
	}
	tr := FromAdjacency(adj, nil)
	if tr.Cardinality() != 6 {
		t.Fatalf("card=%d want 6", tr.Cardinality())
	}
	if got := tr.Root.Set.Slice(); !reflect.DeepEqual(got, []uint32{0, 1, 3}) {
		t.Fatalf("sources = %v", got)
	}
	if c := tr.Root.Child(3); c == nil || c.Set.Card() != 3 {
		t.Fatal("adjacency of 3 wrong")
	}
	if tr.Root.Child(2) != nil {
		t.Fatal("vertex with no out-edges should be absent")
	}
}

func TestLayoutPolicies(t *testing.T) {
	adj := make([][]uint32, 2)
	dense := make([]uint32, 512)
	for i := range dense {
		dense[i] = uint32(i)
	}
	adj[0] = dense
	adj[1] = []uint32{0, 100000, 200000, 3000000}

	auto := FromAdjacency(adj, AutoLayout)
	if got := auto.Root.Child(0).Set.Layout(); got != set.Bitset {
		t.Fatalf("auto dense layout = %s want bitset", got)
	}
	if got := auto.Root.Child(1).Set.Layout(); got != set.Uint {
		t.Fatalf("auto sparse layout = %s want uint", got)
	}

	allU := FromAdjacency(adj, UintLayout)
	if got := allU.Root.Child(0).Set.Layout(); got != set.Uint {
		t.Fatalf("uint policy layout = %s", got)
	}
	comp := FromAdjacency(adj, CompositeLayout)
	if got := comp.Root.Child(0).Set.Layout(); got != set.Composite {
		t.Fatalf("composite policy layout = %s", got)
	}
}

func TestMemBytesGrowsWithData(t *testing.T) {
	small := NewBuilder(2, semiring.None, nil)
	small.Add(0, 1)
	st := small.Build()
	big := NewBuilder(2, semiring.None, nil)
	for i := uint32(0); i < 100; i++ {
		big.Add(i, i+1)
	}
	bt := big.Build()
	if bt.MemBytes() <= st.MemBytes() {
		t.Fatalf("MemBytes: big=%d small=%d", bt.MemBytes(), st.MemBytes())
	}
}

// Property: a trie built from random tuples contains exactly the distinct
// tuples, in sorted order.
func TestQuickTrieRoundTrip(t *testing.T) {
	type pair struct{ A, B uint8 }
	f := func(ps []pair) bool {
		b := NewBuilder(2, semiring.None, nil)
		seen := map[[2]uint32]bool{}
		for _, p := range ps {
			tp := [2]uint32{uint32(p.A), uint32(p.B)}
			seen[tp] = true
			b.Add(tp[0], tp[1])
		}
		tr := b.Build()
		if tr.Cardinality() != len(seen) {
			return false
		}
		var got [][2]uint32
		tr.ForEachTuple(func(tp []uint32, _ float64) {
			got = append(got, [2]uint32{tp[0], tp[1]})
		})
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i][0] != got[j][0] {
				return got[i][0] < got[j][0]
			}
			return got[i][1] < got[j][1]
		}) {
			return false
		}
		for _, tp := range got {
			if !seen[tp] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(2, semiring.None, nil)
	ref := map[[2]uint32]bool{}
	for i := 0; i < 20000; i++ {
		x, y := uint32(rng.Intn(500)), uint32(rng.Intn(500))
		b.Add(x, y)
		ref[[2]uint32{x, y}] = true
	}
	tr := b.Build()
	if tr.Cardinality() != len(ref) {
		t.Fatalf("card=%d want %d", tr.Cardinality(), len(ref))
	}
	n := 0
	tr.ForEachTuple(func(tp []uint32, _ float64) {
		if !ref[[2]uint32{tp[0], tp[1]}] {
			t.Fatalf("spurious tuple %v", tp)
		}
		n++
	})
	if n != len(ref) {
		t.Fatalf("visited %d want %d", n, len(ref))
	}
}
