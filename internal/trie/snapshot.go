// Trie snapshot (de)serialization: the flat on-disk form of a trie used
// by internal/storage segments. A trie serializes level by level in
// breadth-first order — per level a node-offset array plus a blob of
// back-to-back set encodings (see set.AppendTo), and for annotated tries
// one trailing annotation column aligned with the leaf sets. Everything
// is little-endian and 8-byte aligned, so a decoder handed an mmap'd
// segment aliases the set payloads and the annotation column directly
// into the page cache; only the node structs themselves are rebuilt.
//
// Because children of level-l nodes appear in order at level l+1, child
// pointers are implicit: node i's children are the next card(i) nodes of
// the following level. Decoding links them as subslices of one flat
// per-level node array — no per-node pointer arrays are allocated.
package trie

import (
	"encoding/binary"
	"fmt"
	"math"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

const annotatedFlag = 1

// AppendTo appends the binary snapshot encoding of t to dst and returns
// the extended slice. len(dst) must be a multiple of 8.
func (t *Trie) AppendTo(dst []byte) []byte {
	if len(dst)%8 != 0 {
		panic(fmt.Sprintf("trie: AppendTo at misaligned offset %d", len(dst)))
	}
	flags := uint32(0)
	if t.Annotated {
		flags |= annotatedFlag
	}
	dst = set.AppendUint32(dst, uint32(t.Arity))
	dst = set.AppendUint32(dst, flags)
	dst = set.AppendUint32(dst, uint32(t.Op))
	dst = set.AppendUint32(dst, 0) // reserved
	if t.Arity == 0 {
		return set.AppendUint64(dst, math.Float64bits(t.Scalar))
	}

	level := []*Node{t.Root}
	var leaves []*Node
	for l := 0; l < t.Arity; l++ {
		dst = set.AppendUint64(dst, uint64(len(level)))
		// Offsets into the blob, one per node plus the terminator.
		blobLen := 0
		for _, n := range level {
			blobLen += n.Set.EncodedSize()
		}
		dst = set.AppendUint64(dst, uint64(blobLen))
		off := uint64(0)
		for _, n := range level {
			dst = set.AppendUint64(dst, off)
			off += uint64(n.Set.EncodedSize())
		}
		dst = set.AppendUint64(dst, off)
		for _, n := range level {
			dst = n.Set.AppendTo(dst)
		}
		if l == t.Arity-1 {
			leaves = level
			break
		}
		var next []*Node
		for _, n := range level {
			next = append(next, n.Children...)
		}
		level = next
	}
	if t.Annotated {
		total := 0
		for _, n := range leaves {
			total += n.Set.Card()
		}
		dst = set.AppendUint64(dst, uint64(total))
		one := t.Op.One()
		for _, n := range leaves {
			if n.Ann != nil {
				for _, a := range n.Ann {
					dst = set.AppendUint64(dst, math.Float64bits(a))
				}
				continue
			}
			for i := 0; i < n.Set.Card(); i++ {
				dst = set.AppendUint64(dst, math.Float64bits(one))
			}
		}
	}
	return dst
}

// FromBuffers decodes a trie from its snapshot encoding. Set payloads and
// the annotation column alias data (zero copy when data is 8-byte
// aligned, as mmap'd segments are); the caller must keep data immutable
// and alive for the lifetime of the trie.
func FromBuffers(data []byte) (*Trie, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("trie: truncated header (%d bytes)", len(data))
	}
	arity := int(int32(binary.LittleEndian.Uint32(data)))
	flags := binary.LittleEndian.Uint32(data[4:])
	opv := binary.LittleEndian.Uint32(data[8:])
	if arity < 0 || arity > 64 {
		return nil, fmt.Errorf("trie: implausible arity %d", arity)
	}
	if opv > uint32(semiring.Max) {
		return nil, fmt.Errorf("trie: unknown semiring op %d", opv)
	}
	t := &Trie{
		Arity:     arity,
		Annotated: flags&annotatedFlag != 0,
		Op:        semiring.Op(opv),
	}
	pos := 16
	if arity == 0 {
		if len(data) < pos+8 {
			return nil, fmt.Errorf("trie: truncated scalar")
		}
		t.Scalar = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		return t, nil
	}

	levels := make([][]Node, arity)
	for l := 0; l < arity; l++ {
		if len(data) < pos+16 {
			return nil, fmt.Errorf("trie: truncated level %d header", l)
		}
		count := binary.LittleEndian.Uint64(data[pos:])
		blobLen := binary.LittleEndian.Uint64(data[pos+8:])
		pos += 16
		if count > uint64(len(data)) || blobLen > uint64(len(data)) {
			return nil, fmt.Errorf("trie: implausible level %d sizes (count=%d blob=%d)", l, count, blobLen)
		}
		n := int(count)
		offBytes := 8 * (n + 1)
		if len(data) < pos+offBytes {
			return nil, fmt.Errorf("trie: truncated level %d offsets", l)
		}
		offsets, err := set.AliasUint64s(data[pos:], n+1)
		if err != nil {
			return nil, err
		}
		pos += offBytes
		if len(data) < pos+int(blobLen) {
			return nil, fmt.Errorf("trie: truncated level %d blob (want %d bytes)", l, blobLen)
		}
		blob := data[pos : pos+int(blobLen)]
		pos += int(blobLen)
		if offsets[n] != blobLen {
			return nil, fmt.Errorf("trie: level %d offset terminator %d != blob length %d", l, offsets[n], blobLen)
		}
		nodes := make([]Node, n)
		for i := 0; i < n; i++ {
			lo, hi := offsets[i], offsets[i+1]
			if lo > hi || hi > blobLen {
				return nil, fmt.Errorf("trie: level %d node %d offsets out of order", l, i)
			}
			s, used, err := set.FromBuffers(blob[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("trie: level %d node %d: %w", l, i, err)
			}
			if uint64(used) != hi-lo {
				return nil, fmt.Errorf("trie: level %d node %d: %d trailing bytes", l, i, hi-lo-uint64(used))
			}
			nodes[i].Set = s
		}
		levels[l] = nodes
	}

	// Link children: node i of level l owns the next card(i) nodes of
	// level l+1, as a subslice of the flat node array.
	for l := 0; l < arity-1; l++ {
		next := levels[l+1]
		childPos := 0
		for i := range levels[l] {
			card := levels[l][i].Set.Card()
			if childPos+card > len(next) {
				return nil, fmt.Errorf("trie: level %d has %d nodes, level %d needs %d", l+1, len(next), l, childPos+card)
			}
			children := make([]*Node, card)
			for c := 0; c < card; c++ {
				children[c] = &next[childPos+c]
			}
			levels[l][i].Children = children
			childPos += card
		}
		if childPos != len(next) {
			return nil, fmt.Errorf("trie: level %d has %d orphan nodes", l+1, len(next)-childPos)
		}
	}

	if t.Annotated {
		if len(data) < pos+8 {
			return nil, fmt.Errorf("trie: truncated annotation count")
		}
		total := int(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		if total < 0 || len(data) < pos+8*total {
			return nil, fmt.Errorf("trie: truncated annotation column (want %d values)", total)
		}
		anns, err := set.AliasFloat64s(data[pos:], total)
		if err != nil {
			return nil, err
		}
		leafTotal := 0
		leaves := levels[arity-1]
		for i := range leaves {
			leafTotal += leaves[i].Set.Card()
		}
		if leafTotal != total {
			return nil, fmt.Errorf("trie: %d annotations for %d leaf values", total, leafTotal)
		}
		at := 0
		for i := range leaves {
			card := leaves[i].Set.Card()
			leaves[i].Ann = anns[at : at+card : at+card]
			at += card
		}
	}

	if len(levels[0]) != 1 {
		return nil, fmt.Errorf("trie: %d root nodes", len(levels[0]))
	}
	t.Root = &levels[0][0]
	return t, nil
}

// Columns materializes the first max tuples of the trie (max <= 0 means
// all) into flat per-attribute columns, plus the aligned annotation
// column for annotated tries. Leaf values bulk-copy out of the leaf sets
// (a straight copy for uint-layout leaves), which is what makes columnar
// result rendering cheaper than a per-tuple trie walk.
func (t *Trie) Columns(max int) ([][]uint32, []float64) {
	if t.Arity == 0 {
		return nil, nil
	}
	card := t.Cardinality()
	if max <= 0 || max > card {
		max = card
	}
	cols := make([][]uint32, t.Arity)
	for i := range cols {
		cols[i] = make([]uint32, 0, max)
	}
	var anns []float64
	if t.Annotated {
		anns = make([]float64, 0, max)
	}
	cw := &colWriter{t: t, cols: cols, anns: anns, remaining: max}
	cw.fill(t.Root, 0)
	return cw.cols, cw.anns
}

type colWriter struct {
	t         *Trie
	cols      [][]uint32
	anns      []float64
	remaining int
}

// fill appends up to cw.remaining rows of the subtree at n (level) and
// returns the number appended.
func (cw *colWriter) fill(n *Node, level int) int {
	if n == nil || cw.remaining == 0 {
		return 0
	}
	if level == cw.t.Arity-1 {
		k := n.Set.Card()
		if k > cw.remaining {
			k = cw.remaining
		}
		cw.cols[level] = n.Set.AppendValues(cw.cols[level], k)
		if cw.t.Annotated {
			if n.Ann != nil {
				cw.anns = append(cw.anns, n.Ann[:k]...)
			} else {
				one := cw.t.Op.One()
				for i := 0; i < k; i++ {
					cw.anns = append(cw.anns, one)
				}
			}
		}
		cw.remaining -= k
		return k
	}
	produced := 0
	col := cw.cols[level]
	n.Set.ForEachUntil(func(i int, v uint32) bool {
		k := cw.fill(n.Children[i], level+1)
		for j := 0; j < k; j++ {
			col = append(col, v)
		}
		produced += k
		return cw.remaining > 0
	})
	cw.cols[level] = col
	return produced
}
