// Package trie implements EmptyHeaded's storage structure (§2.2, Fig. 2):
// a multi-level trie of sets of dictionary-encoded 32-bit values, where
// each set may carry per-value annotations from a semiring and each set is
// stored in the layout chosen by the layout optimizer (§4).
//
// Tries are materialized through ColumnarBuilder: flat per-attribute
// columns ordered by a parallel MSD radix sort, deduplicated in place
// under ⊕, and assembled level by level from column runs (leaf sets and
// annotations alias the sorted columns). The row-at-a-time Builder is a
// thin adapter over the same path.
package trie

import (
	"fmt"
	"strings"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

// LayoutFunc decides the physical layout for one set of a trie given the
// level it appears at and its (strictly increasing) values. The storage
// package supplies the relation-level, set-level, and block-level policies.
type LayoutFunc func(level int, vals []uint32) set.Layout

// AutoLayout is the paper's default set-level optimizer: uint for small
// or sparse sets, bitset when the value range is dense enough that the
// word-parallel kernels win, composite when density is clustered in runs
// rather than uniform (see set.ChooseLayout for the thresholds).
func AutoLayout(_ int, vals []uint32) set.Layout { return set.ChooseLayout(vals) }

// UintLayout stores every set as a sorted uint array (relation-level "-R").
func UintLayout(_ int, _ []uint32) set.Layout { return set.Uint }

// BitsetLayout stores every set as a bitset (relation-level, dense).
func BitsetLayout(_ int, _ []uint32) set.Layout { return set.Bitset }

// CompositeLayout stores every set in the block-level composite layout.
func CompositeLayout(_ int, _ []uint32) set.Layout { return set.Composite }

// Node is one trie node: a set of values, each optionally pointing at a
// child node (inner levels) and optionally annotated (the last annotated
// level). Children and Ann are rank-indexed, aligned with Set iteration
// order.
type Node struct {
	Set      set.Set
	Children []*Node
	Ann      []float64
}

// Child returns the child node under value v, or nil if v is absent or the
// node is a leaf. This is the trie operation R[t] of Table 2.
func (n *Node) Child(v uint32) *Node {
	if n == nil || n.Children == nil {
		return nil
	}
	r, ok := n.Set.Rank(v)
	if !ok {
		return nil
	}
	return n.Children[r]
}

// AnnOf returns the annotation of value v, or the semiring op's One if the
// node is un-annotated. ok is false when v is absent.
func (n *Node) AnnOf(v uint32, op semiring.Op) (ann float64, ok bool) {
	r, found := n.Set.Rank(v)
	if !found {
		return 0, false
	}
	if n.Ann == nil {
		return op.One(), true
	}
	return n.Ann[r], true
}

// Trie is an immutable relation in trie form.
type Trie struct {
	// Arity is the number of key attributes (levels).
	Arity int
	// Annotated reports whether leaf values carry annotations.
	Annotated bool
	// Op is the semiring under which annotations combine.
	Op semiring.Op
	// Root holds the first-level set. For Arity 0 (scalar relations such
	// as the N(;w) count in PageRank) Root is nil and Scalar holds the
	// annotation.
	Root   *Node
	Scalar float64
}

// NewEmpty builds an empty relation of the given arity — the identity
// base for delta overlays (an insert-only overlay over NewEmpty is the
// relation itself) and the tombstone trie of a fresh overlay.
func NewEmpty(arity int, annotated bool, op semiring.Op) *Trie {
	return &Trie{Arity: arity, Annotated: annotated, Op: op, Root: &Node{}}
}

// NewScalar builds a zero-arity annotated relation (a single semiring value).
func NewScalar(v float64, op semiring.Op) *Trie {
	return &Trie{Arity: 0, Annotated: true, Op: op, Scalar: v}
}

// Cardinality returns the number of tuples in the relation.
func (t *Trie) Cardinality() int {
	if t.Arity == 0 {
		return 1
	}
	return countLeaves(t.Root, t.Arity)
}

func countLeaves(n *Node, depth int) int {
	if n == nil {
		return 0
	}
	if depth == 1 || n.Children == nil {
		return n.Set.Card()
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c, depth-1)
	}
	return total
}

// Contains reports whether the relation holds the full tuple. Cost is
// one rank probe per level; the streaming-update path uses it to
// maintain merged cardinalities incrementally instead of re-walking the
// merged trie after every batch.
func (t *Trie) Contains(tuple []uint32) bool {
	if t == nil || t.Root == nil || len(tuple) != t.Arity || t.Arity == 0 {
		return false
	}
	n := t.Root
	last := len(tuple) - 1
	for level, v := range tuple {
		if n == nil {
			return false
		}
		if level == last {
			_, ok := n.Set.Rank(v)
			return ok
		}
		n = n.Child(v)
	}
	return false
}

// MemBytes estimates the trie payload size (sets + annotations + child
// pointers), used by the layout experiments.
func (t *Trie) MemBytes() int {
	return memBytes(t.Root)
}

func memBytes(n *Node) int {
	if n == nil {
		return 0
	}
	b := n.Set.MemBytes() + 8*len(n.Children) + 8*len(n.Ann)
	for _, c := range n.Children {
		b += memBytes(c)
	}
	return b
}

// LevelLayoutProfile describes the physical layouts the layout optimizer
// chose for one trie level: how many sets landed in each layout and how
// many members they hold. Maps are keyed by set.Layout names ("uint",
// "bitset", "composite") for direct JSON rendering.
type LevelLayoutProfile struct {
	Level   int              `json:"level"`
	Sets    map[string]int64 `json:"sets"`
	Members map[string]int64 `json:"members"`
}

// LayoutProfile walks the trie and reports the per-level layout mix —
// the observability face of the adaptive layout optimizer (EXPLAIN and
// /debug/relations render it so a dense level showing up as uint is
// visible, not silent).
func (t *Trie) LayoutProfile() []LevelLayoutProfile {
	if t == nil || t.Root == nil || t.Arity == 0 {
		return nil
	}
	prof := make([]LevelLayoutProfile, t.Arity)
	for i := range prof {
		prof[i] = LevelLayoutProfile{
			Level:   i,
			Sets:    map[string]int64{},
			Members: map[string]int64{},
		}
	}
	var walk func(n *Node, lvl int)
	walk = func(n *Node, lvl int) {
		if n == nil || lvl >= t.Arity {
			return
		}
		name := n.Set.Layout().String()
		prof[lvl].Sets[name]++
		prof[lvl].Members[name] += int64(n.Set.Card())
		for _, c := range n.Children {
			walk(c, lvl+1)
		}
	}
	walk(t.Root, 0)
	return prof
}

// Builder accumulates tuples row-at-a-time and materializes a Trie. It is
// a thin adapter over ColumnarBuilder: each Add scatters the tuple into
// per-attribute columns (amortized appends, no per-row allocation), so
// callers that must stay on the row API still get the columnar sort and
// build path.
type Builder struct {
	cb *ColumnarBuilder
}

// NewBuilder returns a builder for relations of the given arity. op governs
// how duplicate-tuple annotations combine; layout picks per-set layouts
// (nil means the set-level auto optimizer).
//
// Deprecated: use NewColumnarBuilder directly — it exposes the same
// Add/AddAnn/Build API without the extra indirection, and every engine
// call site has moved to it. The adapter remains only for external code
// still on the row API.
func NewBuilder(arity int, op semiring.Op, layout LayoutFunc) *Builder {
	return &Builder{cb: NewColumnarBuilder(arity, op, layout)}
}

// Add appends one un-annotated tuple. The tuple is copied, so callers may
// reuse their buffer.
func (b *Builder) Add(tuple ...uint32) { b.cb.Add(tuple...) }

// AddAnn appends one annotated tuple. The tuple is copied, so callers may
// reuse their buffer.
func (b *Builder) AddAnn(ann float64, tuple ...uint32) { b.cb.AddAnn(ann, tuple...) }

// Build sorts, deduplicates (combining annotations under the semiring) and
// materializes the trie. The builder must not be reused afterwards.
// Rows appended in lexicographic order (the natural emission order of the
// engine's loop nests) skip the sort entirely.
func (b *Builder) Build() *Trie {
	return b.cb.Build()
}

// FromAdjacency builds a 2-level trie directly from an adjacency structure:
// adj[v] must be a strictly increasing neighbor list; vertices with empty
// lists are omitted from the first level. This is the fast path for graph
// edge relations.
func FromAdjacency(adj [][]uint32, layout LayoutFunc) *Trie {
	if layout == nil {
		layout = AutoLayout
	}
	var srcs []uint32
	for v, ns := range adj {
		if len(ns) > 0 {
			srcs = append(srcs, uint32(v))
		}
	}
	root := &Node{
		Set:      set.BuildLayout(srcs, layout(0, srcs)),
		Children: make([]*Node, len(srcs)),
	}
	for i, v := range srcs {
		ns := adj[v]
		root.Children[i] = &Node{Set: set.BuildLayout(ns, layout(1, ns))}
	}
	return &Trie{Arity: 2, Root: root}
}

// ForEachTuple enumerates all tuples (with annotation; op.One() when
// un-annotated) in lexicographic order.
func (t *Trie) ForEachTuple(f func(tuple []uint32, ann float64)) {
	if t.Arity == 0 {
		f(nil, t.Scalar)
		return
	}
	buf := make([]uint32, t.Arity)
	walk(t.Root, buf, 0, t.Arity, t.Op, f)
}

func walk(n *Node, buf []uint32, level, arity int, op semiring.Op, f func([]uint32, float64)) {
	if n == nil {
		return
	}
	last := level == arity-1
	n.Set.ForEach(func(i int, v uint32) {
		buf[level] = v
		if last {
			ann := op.One()
			if n.Ann != nil {
				ann = n.Ann[i]
			}
			f(buf, ann)
			return
		}
		walk(n.Children[i], buf, level+1, arity, op, f)
	})
}

// String renders small tries for debugging.
func (t *Trie) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trie(arity=%d, card=%d)", t.Arity, t.Cardinality())
	if t.Cardinality() <= 20 {
		sb.WriteString("{")
		first := true
		t.ForEachTuple(func(tp []uint32, ann float64) {
			if !first {
				sb.WriteString(" ")
			}
			first = false
			if t.Annotated {
				fmt.Fprintf(&sb, "%v:%g", tp, ann)
			} else {
				fmt.Fprintf(&sb, "%v", tp)
			}
		})
		sb.WriteString("}")
	}
	return sb.String()
}
