// Package trie implements EmptyHeaded's storage structure (§2.2, Fig. 2):
// a multi-level trie of sets of dictionary-encoded 32-bit values, where
// each set may carry per-value annotations from a semiring and each set is
// stored in the layout chosen by the layout optimizer (§4).
package trie

import (
	"fmt"
	"sort"
	"strings"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

// LayoutFunc decides the physical layout for one set of a trie given the
// level it appears at and its (strictly increasing) values. The storage
// package supplies the relation-level, set-level, and block-level policies.
type LayoutFunc func(level int, vals []uint32) set.Layout

// AutoLayout is the paper's default set-level optimizer.
func AutoLayout(_ int, vals []uint32) set.Layout { return set.ChooseLayout(vals) }

// UintLayout stores every set as a sorted uint array (relation-level "-R").
func UintLayout(_ int, _ []uint32) set.Layout { return set.Uint }

// BitsetLayout stores every set as a bitset (relation-level, dense).
func BitsetLayout(_ int, _ []uint32) set.Layout { return set.Bitset }

// CompositeLayout stores every set in the block-level composite layout.
func CompositeLayout(_ int, _ []uint32) set.Layout { return set.Composite }

// Node is one trie node: a set of values, each optionally pointing at a
// child node (inner levels) and optionally annotated (the last annotated
// level). Children and Ann are rank-indexed, aligned with Set iteration
// order.
type Node struct {
	Set      set.Set
	Children []*Node
	Ann      []float64
}

// Child returns the child node under value v, or nil if v is absent or the
// node is a leaf. This is the trie operation R[t] of Table 2.
func (n *Node) Child(v uint32) *Node {
	if n == nil || n.Children == nil {
		return nil
	}
	r, ok := n.Set.Rank(v)
	if !ok {
		return nil
	}
	return n.Children[r]
}

// AnnOf returns the annotation of value v, or the semiring op's One if the
// node is un-annotated. ok is false when v is absent.
func (n *Node) AnnOf(v uint32, op semiring.Op) (ann float64, ok bool) {
	r, found := n.Set.Rank(v)
	if !found {
		return 0, false
	}
	if n.Ann == nil {
		return op.One(), true
	}
	return n.Ann[r], true
}

// Trie is an immutable relation in trie form.
type Trie struct {
	// Arity is the number of key attributes (levels).
	Arity int
	// Annotated reports whether leaf values carry annotations.
	Annotated bool
	// Op is the semiring under which annotations combine.
	Op semiring.Op
	// Root holds the first-level set. For Arity 0 (scalar relations such
	// as the N(;w) count in PageRank) Root is nil and Scalar holds the
	// annotation.
	Root   *Node
	Scalar float64
}

// NewScalar builds a zero-arity annotated relation (a single semiring value).
func NewScalar(v float64, op semiring.Op) *Trie {
	return &Trie{Arity: 0, Annotated: true, Op: op, Scalar: v}
}

// Cardinality returns the number of tuples in the relation.
func (t *Trie) Cardinality() int {
	if t.Arity == 0 {
		return 1
	}
	return countLeaves(t.Root, t.Arity)
}

func countLeaves(n *Node, depth int) int {
	if n == nil {
		return 0
	}
	if depth == 1 || n.Children == nil {
		return n.Set.Card()
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c, depth-1)
	}
	return total
}

// MemBytes estimates the trie payload size (sets + annotations + child
// pointers), used by the layout experiments.
func (t *Trie) MemBytes() int {
	return memBytes(t.Root)
}

func memBytes(n *Node) int {
	if n == nil {
		return 0
	}
	b := n.Set.MemBytes() + 8*len(n.Children) + 8*len(n.Ann)
	for _, c := range n.Children {
		b += memBytes(c)
	}
	return b
}

// Builder accumulates tuples and materializes a Trie.
type Builder struct {
	arity     int
	op        semiring.Op
	layout    LayoutFunc
	annotated bool
	rows      [][]uint32
	anns      []float64
}

// NewBuilder returns a builder for relations of the given arity. op governs
// how duplicate-tuple annotations combine; layout picks per-set layouts
// (nil means the set-level auto optimizer).
func NewBuilder(arity int, op semiring.Op, layout LayoutFunc) *Builder {
	if layout == nil {
		layout = AutoLayout
	}
	return &Builder{arity: arity, op: op, layout: layout}
}

// Add appends one un-annotated tuple. The tuple is copied, so callers may
// reuse their buffer.
func (b *Builder) Add(tuple ...uint32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("trie: Add arity %d, want %d", len(tuple), b.arity))
	}
	b.rows = append(b.rows, append([]uint32(nil), tuple...))
}

// AddAnn appends one annotated tuple. The tuple is copied, so callers may
// reuse their buffer.
func (b *Builder) AddAnn(ann float64, tuple ...uint32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("trie: AddAnn arity %d, want %d", len(tuple), b.arity))
	}
	b.annotated = true
	b.rows = append(b.rows, append([]uint32(nil), tuple...))
	b.anns = append(b.anns, ann)
}

// Build sorts, deduplicates (combining annotations under the semiring) and
// materializes the trie. The builder must not be reused afterwards.
// Rows appended in lexicographic order (the natural emission order of the
// engine's loop nests) skip the sort entirely.
func (b *Builder) Build() *Trie {
	if b.annotated && len(b.anns) != len(b.rows) {
		panic("trie: mixed annotated and un-annotated tuples")
	}
	idx := make([]int, len(b.rows))
	for i := range idx {
		idx[i] = i
	}
	presorted := true
	for i := 1; i < len(b.rows); i++ {
		if tupleLess(b.rows[i], b.rows[i-1]) {
			presorted = false
			break
		}
	}
	if !presorted {
		sort.Slice(idx, func(x, y int) bool {
			return tupleLess(b.rows[idx[x]], b.rows[idx[y]])
		})
	}
	// Deduplicate, combining annotations with ⊕.
	rows := make([][]uint32, 0, len(b.rows))
	var anns []float64
	if b.annotated {
		anns = make([]float64, 0, len(b.anns))
	}
	for _, i := range idx {
		r := b.rows[i]
		if n := len(rows); n > 0 && tupleEq(rows[n-1], r) {
			if b.annotated {
				anns[n-1] = b.op.Add(anns[n-1], b.anns[i])
			}
			continue
		}
		rows = append(rows, r)
		if b.annotated {
			anns = append(anns, b.anns[i])
		}
	}
	t := &Trie{Arity: b.arity, Annotated: b.annotated, Op: b.op}
	if b.arity == 0 {
		t.Scalar = b.op.Zero()
		for _, a := range anns {
			t.Scalar = b.op.Add(t.Scalar, a)
		}
		return t
	}
	t.Root = buildLevel(rows, anns, 0, b.arity, b.layout)
	return t
}

func tupleEq(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func tupleLess(a, b []uint32) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// buildLevel builds the trie node for rows[lo:hi) at the given level; rows
// must be sorted and deduplicated.
func buildLevel(rows [][]uint32, anns []float64, level, arity int, layout LayoutFunc) *Node {
	if len(rows) == 0 {
		return &Node{}
	}
	// Group rows by the value at this level.
	var vals []uint32
	var starts []int
	for i := 0; i < len(rows); i++ {
		v := rows[i][level]
		if len(vals) == 0 || vals[len(vals)-1] != v {
			vals = append(vals, v)
			starts = append(starts, i)
		}
	}
	starts = append(starts, len(rows))
	n := &Node{Set: set.BuildLayout(vals, layout(level, vals))}
	last := level == arity-1
	if last {
		if anns != nil {
			n.Ann = make([]float64, len(vals))
			copy(n.Ann, anns) // one row per value at the last level
		}
		return n
	}
	n.Children = make([]*Node, len(vals))
	for gi := range vals {
		lo, hi := starts[gi], starts[gi+1]
		var sub []float64
		if anns != nil {
			sub = anns[lo:hi]
		}
		n.Children[gi] = buildLevel(rows[lo:hi], sub, level+1, arity, layout)
	}
	return n
}

// FromAdjacency builds a 2-level trie directly from an adjacency structure:
// adj[v] must be a strictly increasing neighbor list; vertices with empty
// lists are omitted from the first level. This is the fast path for graph
// edge relations.
func FromAdjacency(adj [][]uint32, layout LayoutFunc) *Trie {
	if layout == nil {
		layout = AutoLayout
	}
	var srcs []uint32
	for v, ns := range adj {
		if len(ns) > 0 {
			srcs = append(srcs, uint32(v))
		}
	}
	root := &Node{
		Set:      set.BuildLayout(srcs, layout(0, srcs)),
		Children: make([]*Node, len(srcs)),
	}
	for i, v := range srcs {
		ns := adj[v]
		root.Children[i] = &Node{Set: set.BuildLayout(ns, layout(1, ns))}
	}
	return &Trie{Arity: 2, Root: root}
}

// ForEachTuple enumerates all tuples (with annotation; op.One() when
// un-annotated) in lexicographic order.
func (t *Trie) ForEachTuple(f func(tuple []uint32, ann float64)) {
	if t.Arity == 0 {
		f(nil, t.Scalar)
		return
	}
	buf := make([]uint32, t.Arity)
	walk(t.Root, buf, 0, t.Arity, t.Op, f)
}

func walk(n *Node, buf []uint32, level, arity int, op semiring.Op, f func([]uint32, float64)) {
	if n == nil {
		return
	}
	last := level == arity-1
	n.Set.ForEach(func(i int, v uint32) {
		buf[level] = v
		if last {
			ann := op.One()
			if n.Ann != nil {
				ann = n.Ann[i]
			}
			f(buf, ann)
			return
		}
		walk(n.Children[i], buf, level+1, arity, op, f)
	})
}

// String renders small tries for debugging.
func (t *Trie) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trie(arity=%d, card=%d)", t.Arity, t.Cardinality())
	if t.Cardinality() <= 20 {
		sb.WriteString("{")
		first := true
		t.ForEachTuple(func(tp []uint32, ann float64) {
			if !first {
				sb.WriteString(" ")
			}
			first = false
			if t.Annotated {
				fmt.Fprintf(&sb, "%v:%g", tp, ann)
			} else {
				fmt.Fprintf(&sb, "%v", tp)
			}
		})
		sb.WriteString("}")
	}
	return sb.String()
}
