package trie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

// --- reference implementation ------------------------------------------
//
// refBuild is the pre-columnar row-at-a-time builder (sort.Slice over row
// pointers, recursive build with copied annotation slices), kept verbatim
// as the differential-testing oracle for ColumnarBuilder.

type refRow struct {
	tuple []uint32
	ann   float64
}

func refBuild(arity int, op semiring.Op, layout LayoutFunc, annotated bool, rows []refRow) *Trie {
	if layout == nil {
		layout = AutoLayout
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b []uint32) bool {
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return less(rows[idx[x]].tuple, rows[idx[y]].tuple)
	})
	var srows [][]uint32
	var sanns []float64
	for _, i := range idx {
		r := rows[i]
		if n := len(srows); n > 0 && !less(srows[n-1], r.tuple) && !less(r.tuple, srows[n-1]) {
			if annotated {
				sanns[n-1] = op.Add(sanns[n-1], r.ann)
			}
			continue
		}
		srows = append(srows, r.tuple)
		if annotated {
			sanns = append(sanns, r.ann)
		}
	}
	t := &Trie{Arity: arity, Annotated: annotated, Op: op}
	if arity == 0 {
		t.Scalar = op.Zero()
		for _, a := range sanns {
			t.Scalar = op.Add(t.Scalar, a)
		}
		return t
	}
	t.Root = refBuildLevel(srows, sanns, 0, arity, layout)
	return t
}

func refBuildLevel(rows [][]uint32, anns []float64, level, arity int, layout LayoutFunc) *Node {
	if len(rows) == 0 {
		return &Node{}
	}
	var vals []uint32
	var starts []int
	for i := 0; i < len(rows); i++ {
		v := rows[i][level]
		if len(vals) == 0 || vals[len(vals)-1] != v {
			vals = append(vals, v)
			starts = append(starts, i)
		}
	}
	starts = append(starts, len(rows))
	n := &Node{Set: set.BuildLayout(vals, layout(level, vals))}
	if level == arity-1 {
		if anns != nil {
			n.Ann = make([]float64, len(vals))
			copy(n.Ann, anns)
		}
		return n
	}
	n.Children = make([]*Node, len(vals))
	for gi := range vals {
		lo, hi := starts[gi], starts[gi+1]
		var sub []float64
		if anns != nil {
			sub = anns[lo:hi]
		}
		n.Children[gi] = refBuildLevel(rows[lo:hi], sub, level+1, arity, layout)
	}
	return n
}

// requireSameTrie asserts two tries are structurally identical: same
// arity/annotation/scalar, and node-by-node the same values, the same
// chosen set layouts, and the same annotations.
func requireSameTrie(t *testing.T, got, want *Trie) {
	t.Helper()
	if got.Arity != want.Arity || got.Annotated != want.Annotated {
		t.Fatalf("shape: got arity=%d ann=%v, want arity=%d ann=%v",
			got.Arity, got.Annotated, want.Arity, want.Annotated)
	}
	if got.Arity == 0 {
		if got.Scalar != want.Scalar {
			t.Fatalf("scalar: got %v want %v", got.Scalar, want.Scalar)
		}
		return
	}
	requireSameNode(t, got.Root, want.Root, "root")
}

func requireSameNode(t *testing.T, got, want *Node, path string) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: got nil=%v want nil=%v", path, got == nil, want == nil)
	}
	if got == nil {
		return
	}
	gv, wv := got.Set.Slice(), want.Set.Slice()
	if len(gv) != len(wv) {
		t.Fatalf("%s: card %d want %d", path, len(gv), len(wv))
	}
	for i := range gv {
		if gv[i] != wv[i] {
			t.Fatalf("%s: value[%d]=%d want %d", path, i, gv[i], wv[i])
		}
	}
	if got.Set.Layout() != want.Set.Layout() {
		t.Fatalf("%s: layout %v want %v", path, got.Set.Layout(), want.Set.Layout())
	}
	if (got.Ann == nil) != (want.Ann == nil) || len(got.Ann) != len(want.Ann) {
		t.Fatalf("%s: ann shape %d/%v want %d/%v", path, len(got.Ann), got.Ann == nil, len(want.Ann), want.Ann == nil)
	}
	for i := range got.Ann {
		if got.Ann[i] != want.Ann[i] {
			t.Fatalf("%s: ann[%d]=%v want %v", path, i, got.Ann[i], want.Ann[i])
		}
	}
	if len(got.Children) != len(want.Children) {
		t.Fatalf("%s: %d children want %d", path, len(got.Children), len(want.Children))
	}
	for i := range got.Children {
		requireSameNode(t, got.Children[i], want.Children[i], fmt.Sprintf("%s/%d", path, gv[i]))
	}
}

// genRows draws n tuples. skewed inputs use a power-law-ish distribution
// with heavy duplication (the adversarial case for both the radix sort's
// partitioning and the work-stealing build); uniform inputs stress wide
// byte histograms including values crossing all four byte lanes.
func genRows(rng *rand.Rand, n, arity int, skewed bool) []refRow {
	rows := make([]refRow, n)
	for i := range rows {
		tp := make([]uint32, arity)
		for k := range tp {
			if skewed {
				// Mostly tiny values (hot vertices), occasionally huge.
				switch rng.Intn(10) {
				case 0:
					tp[k] = rng.Uint32()
				case 1, 2:
					tp[k] = uint32(rng.Intn(1 << 16))
				default:
					tp[k] = uint32(rng.Intn(8))
				}
			} else {
				tp[k] = rng.Uint32() >> uint(rng.Intn(24))
			}
		}
		// Integer-valued annotations keep ⊕ exact under any combine order
		// (sort order among duplicate tuples is unspecified in both
		// implementations).
		rows[i] = refRow{tuple: tp, ann: float64(rng.Intn(7))}
	}
	return rows
}

func TestColumnarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []semiring.Op{semiring.Sum, semiring.Count, semiring.Min, semiring.Max}
	// Forced-bitset layouts are exercised separately on a bounded value
	// range (a bitset over full-range uint32 values would span gigabytes).
	layouts := []struct {
		name string
		fn   LayoutFunc
	}{
		{"auto", nil},
		{"uint", UintLayout},
	}
	for _, arity := range []int{1, 2, 3, 4} {
		for _, skewed := range []bool{false, true} {
			for _, annotated := range []bool{false, true} {
				for ci, n := range []int{0, 1, 3, 100, 5000} {
					op := ops[ci%len(ops)]
					lay := layouts[ci%len(layouts)]
					name := fmt.Sprintf("a%d_skew%v_ann%v_n%d_%s_%s", arity, skewed, annotated, n, op, lay.name)
					t.Run(name, func(t *testing.T) {
						rows := genRows(rng, n, arity, skewed)
						// A builder that saw no AddAnn stays un-annotated.
						want := refBuild(arity, op, lay.fn, annotated && n > 0, rows)

						cb := NewColumnarBuilder(arity, op, lay.fn)
						for _, r := range rows {
							if annotated {
								cb.AddAnn(r.ann, r.tuple...)
							} else {
								cb.Add(r.tuple...)
							}
						}
						requireSameTrie(t, cb.Build(), want)
					})
				}
			}
		}
	}
}

// TestColumnarDifferentialLarge pushes row counts past the parallel sort
// and parallel build thresholds so the goroutine paths run (and, under
// -race, are checked for races).
func TestColumnarDifferentialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, skewed := range []bool{false, true} {
		n := parallelBuildMin + 1234
		rows := genRows(rng, n, 2, skewed)
		want := refBuild(2, semiring.Sum, nil, true, rows)

		cols := [][]uint32{make([]uint32, n), make([]uint32, n)}
		anns := make([]float64, n)
		for i, r := range rows {
			cols[0][i], cols[1][i] = r.tuple[0], r.tuple[1]
			anns[i] = r.ann
		}
		got := FromColumns(cols, anns, semiring.Sum, nil)
		requireSameTrie(t, got, want)
	}
}

func TestColumnarBitsetLayout(t *testing.T) {
	// Dense small-range values under a forced bitset layout.
	rng := rand.New(rand.NewSource(3))
	rows := make([]refRow, 4000)
	for i := range rows {
		rows[i] = refRow{tuple: []uint32{uint32(rng.Intn(64)), uint32(rng.Intn(512))}, ann: float64(rng.Intn(5))}
	}
	want := refBuild(2, semiring.Sum, BitsetLayout, true, rows)
	cb := NewColumnarBuilder(2, semiring.Sum, BitsetLayout)
	for _, r := range rows {
		cb.AddAnn(r.ann, r.tuple...)
	}
	requireSameTrie(t, cb.Build(), want)
}

func TestColumnarSetColumnsPresorted(t *testing.T) {
	// Already sorted columns skip the sort; the trie must alias-build
	// correctly either way.
	cols := [][]uint32{{1, 1, 2, 5}, {3, 8, 0, 9}}
	tr := FromColumns(cols, nil, semiring.None, nil)
	if tr.Cardinality() != 4 {
		t.Fatalf("card=%d", tr.Cardinality())
	}
	want := refBuild(2, semiring.None, nil, false, []refRow{
		{tuple: []uint32{1, 3}}, {tuple: []uint32{1, 8}}, {tuple: []uint32{2, 0}}, {tuple: []uint32{5, 9}},
	})
	requireSameTrie(t, tr, want)
}

func TestColumnarAppendColumns(t *testing.T) {
	cb := NewColumnarBuilder(2, semiring.Sum, nil)
	cb.AppendColumns([][]uint32{{9, 2}, {1, 1}}, []float64{2, 3})
	cb.AppendColumns([][]uint32{{2}, {1}}, []float64{5})
	tr := cb.Build()
	if tr.Cardinality() != 2 {
		t.Fatalf("card=%d", tr.Cardinality())
	}
	if ann, ok := tr.Root.Child(2).AnnOf(1, tr.Op); !ok || ann != 8 {
		t.Fatalf("dedup ann=%v ok=%v want 8", ann, ok)
	}
}

func TestColumnarScalar(t *testing.T) {
	cb := NewColumnarBuilder(0, semiring.Sum, nil)
	cb.AddAnn(2)
	cb.AddAnn(3.5)
	tr := cb.Build()
	if tr.Arity != 0 || tr.Scalar != 5.5 {
		t.Fatalf("scalar=%v", tr.Scalar)
	}
}

// FuzzColumnarDifferential feeds arbitrary byte strings as tuple data to
// both builders. Run with `go test -fuzz FuzzColumnarDifferential` for
// open-ended exploration; the seed corpus runs as a regular test.
func FuzzColumnarDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(2), true)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255}, uint8(1), false)
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 8}, uint8(3), true)
	f.Fuzz(func(t *testing.T, data []byte, ar uint8, annotated bool) {
		arity := int(ar%4) + 1
		stride := arity + 1 // last byte of each record is the annotation
		var rows []refRow
		for i := 0; i+stride <= len(data); i += stride {
			tp := make([]uint32, arity)
			for k := 0; k < arity; k++ {
				// Spread the byte across lanes so single-byte fuzz input
				// still produces multi-byte keys.
				b := uint32(data[i+k])
				tp[k] = b | b<<(8*(int(b)%4))
			}
			rows = append(rows, refRow{tuple: tp, ann: float64(data[i+arity] % 16)})
		}
		want := refBuild(arity, semiring.Sum, nil, annotated && len(rows) > 0, rows)
		cb := NewColumnarBuilder(arity, semiring.Sum, nil)
		for _, r := range rows {
			if annotated {
				cb.AddAnn(r.ann, r.tuple...)
			} else {
				cb.Add(r.tuple...)
			}
		}
		requireSameTrie(t, cb.Build(), want)
	})
}

func TestColumnarRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged SetColumns did not panic")
		}
	}()
	cb := NewColumnarBuilder(2, semiring.None, nil)
	cb.SetColumns([][]uint32{{1, 2}, {3}}, nil)
}
