package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"emptyheaded/internal/semiring"
)

// randomTuples returns n random arity-k tuples (with duplicates).
func randomTuples(n, arity int, span uint32, seed int64) [][]uint32 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]uint32, n)
	for i := range out {
		tp := make([]uint32, arity)
		for j := range tp {
			tp[j] = uint32(r.Intn(int(span)))
		}
		out[i] = tp
	}
	return out
}

func buildTrie(tuples [][]uint32, anns []float64, op semiring.Op, layout LayoutFunc) *Trie {
	arity := len(tuples[0])
	b := NewBuilder(arity, op, layout)
	for i, tp := range tuples {
		if anns != nil {
			b.AddAnn(anns[i], tp...)
		} else {
			b.Add(tp...)
		}
	}
	return b.Build()
}

func trieTuplesKey(t *Trie) string {
	var sb bytes.Buffer
	t.ForEachTuple(func(tp []uint32, ann float64) {
		fmt.Fprintf(&sb, "%v:%g;", tp, ann)
	})
	return sb.String()
}

func roundTripTrie(t *testing.T, tr *Trie) *Trie {
	t.Helper()
	enc := tr.AppendTo(nil)
	got, err := FromBuffers(enc)
	if err != nil {
		t.Fatalf("FromBuffers: %v", err)
	}
	if got.Arity != tr.Arity || got.Annotated != tr.Annotated || got.Op != tr.Op {
		t.Fatalf("metadata mismatch: got (%d,%v,%v) want (%d,%v,%v)",
			got.Arity, got.Annotated, got.Op, tr.Arity, tr.Annotated, tr.Op)
	}
	if got.Cardinality() != tr.Cardinality() {
		t.Fatalf("cardinality %d, want %d", got.Cardinality(), tr.Cardinality())
	}
	if k1, k2 := trieTuplesKey(tr), trieTuplesKey(got); k1 != k2 {
		t.Fatalf("tuple streams differ") // keys can be megabytes; don't print
	}
	re := got.AppendTo(nil)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding not byte-identical (%d vs %d bytes)", len(enc), len(re))
	}
	return got
}

func TestTrieSnapshotRoundTrip(t *testing.T) {
	layouts := map[string]LayoutFunc{
		"auto":   AutoLayout,
		"uint":   UintLayout,
		"bitset": BitsetLayout,
	}
	for name, layout := range layouts {
		t.Run(name, func(t *testing.T) {
			// Binary relation, skewed.
			tr := buildTrie(randomTuples(20000, 2, 300, 1), nil, semiring.None, layout)
			roundTripTrie(t, tr)
			// Ternary annotated under SUM.
			tuples := randomTuples(5000, 3, 40, 2)
			anns := make([]float64, len(tuples))
			for i := range anns {
				anns[i] = float64(i%7) + 0.5
			}
			roundTripTrie(t, buildTrie(tuples, anns, semiring.Sum, layout))
			// Unary.
			roundTripTrie(t, buildTrie(randomTuples(999, 1, 5000, 3), nil, semiring.None, layout))
		})
	}
}

func TestTrieSnapshotScalarAndEmpty(t *testing.T) {
	roundTripTrie(t, NewScalar(42.5, semiring.Sum))
	roundTripTrie(t, NewScalar(0, semiring.Min))
	// Empty relation of arity 2.
	b := NewBuilder(2, semiring.None, nil)
	roundTripTrie(t, b.Build())
}

func TestTrieSnapshotRandomAccess(t *testing.T) {
	tuples := randomTuples(10000, 2, 500, 4)
	tr := buildTrie(tuples, nil, semiring.None, AutoLayout)
	got := roundTripTrie(t, tr)
	// Every original tuple must be reachable by trie descent.
	for _, tp := range tuples {
		child := got.Root.Child(tp[0])
		if child == nil || !child.Set.Contains(tp[1]) {
			t.Fatalf("tuple %v lost after round trip", tp)
		}
	}
}

func TestTrieSnapshotCorruption(t *testing.T) {
	tr := buildTrie(randomTuples(3000, 2, 100, 5), nil, semiring.None, AutoLayout)
	enc := tr.AppendTo(nil)
	// Truncations at every section boundary neighborhood must error, not
	// panic or alias garbage.
	for _, cut := range []int{0, 8, 15, 16, 17, 40, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		if _, err := FromBuffers(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(enc))
		}
	}
}

func TestTrieColumns(t *testing.T) {
	tuples := randomTuples(8000, 3, 60, 6)
	anns := make([]float64, len(tuples))
	for i := range anns {
		anns[i] = float64(i % 13)
	}
	tr := buildTrie(tuples, anns, semiring.Sum, AutoLayout)

	cols, colAnns := tr.Columns(0)
	var wantCols [][]uint32
	var wantAnns []float64
	wantCols = make([][]uint32, tr.Arity)
	tr.ForEachTuple(func(tp []uint32, ann float64) {
		for i, v := range tp {
			wantCols[i] = append(wantCols[i], v)
		}
		wantAnns = append(wantAnns, ann)
	})
	for c := range cols {
		if len(cols[c]) != len(wantCols[c]) {
			t.Fatalf("column %d: %d rows, want %d", c, len(cols[c]), len(wantCols[c]))
		}
		for i := range cols[c] {
			if cols[c][i] != wantCols[c][i] {
				t.Fatalf("column %d row %d: %d want %d", c, i, cols[c][i], wantCols[c][i])
			}
		}
	}
	for i := range colAnns {
		if colAnns[i] != wantAnns[i] {
			t.Fatalf("ann %d: %g want %g", i, colAnns[i], wantAnns[i])
		}
	}

	// Limited extraction returns exactly the first max rows.
	max := 137
	lcols, lanns := tr.Columns(max)
	for c := range lcols {
		if len(lcols[c]) != max {
			t.Fatalf("limited column %d: %d rows, want %d", c, len(lcols[c]), max)
		}
		for i := 0; i < max; i++ {
			if lcols[c][i] != wantCols[c][i] {
				t.Fatalf("limited column %d row %d mismatch", c, i)
			}
		}
	}
	if len(lanns) != max {
		t.Fatalf("limited anns: %d want %d", len(lanns), max)
	}
}
