package trie

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
)

// ColumnarBuilder materializes a Trie from flat per-attribute columns.
// It is the engine's zero-copy materialization path: workers emit output
// tuples column-wise (one append per attribute, no per-row allocation),
// the columns are handed over without transposition, rows are ordered
// with a parallel MSD radix sort over an index permutation (no comparison
// closures), duplicates are folded in place under ⊕, and trie nodes are
// built level by level from column runs — leaf sets and annotation slices
// alias the sorted columns directly.
type ColumnarBuilder struct {
	arity     int
	op        semiring.Op
	layout    LayoutFunc
	annotated bool
	cols      [][]uint32
	anns      []float64
}

// NewColumnarBuilder returns a columnar builder for relations of the
// given arity. op governs how duplicate-tuple annotations combine; layout
// picks per-set layouts (nil means the set-level auto optimizer).
func NewColumnarBuilder(arity int, op semiring.Op, layout LayoutFunc) *ColumnarBuilder {
	if layout == nil {
		layout = AutoLayout
	}
	return &ColumnarBuilder{arity: arity, op: op, layout: layout, cols: make([][]uint32, arity)}
}

// Len returns the number of rows accumulated so far.
func (b *ColumnarBuilder) Len() int {
	if b.arity == 0 {
		return len(b.anns)
	}
	return len(b.cols[0])
}

// SetColumns hands complete columns to the builder zero-copy: cols[i]
// holds attribute i of every row, anns (nil for un-annotated relations)
// the per-row annotations. The builder takes ownership — Build sorts and
// compacts the slices in place, and the resulting trie aliases them.
func (b *ColumnarBuilder) SetColumns(cols [][]uint32, anns []float64) {
	if len(cols) != b.arity {
		panic(fmt.Sprintf("trie: SetColumns got %d columns, want %d", len(cols), b.arity))
	}
	n := -1
	for _, c := range cols {
		if n < 0 {
			n = len(c)
		} else if len(c) != n {
			panic(fmt.Sprintf("trie: ragged columns (%d vs %d rows)", len(c), n))
		}
	}
	if anns != nil && n >= 0 && len(anns) != n {
		panic(fmt.Sprintf("trie: %d annotations for %d rows", len(anns), n))
	}
	b.cols = cols
	b.anns = anns
	b.annotated = anns != nil
}

// AppendColumns appends column fragments (and optionally their
// annotations) to the builder — the bulk-load entry point for callers
// that accumulate output in chunks.
func (b *ColumnarBuilder) AppendColumns(cols [][]uint32, anns []float64) {
	if len(cols) != b.arity {
		panic(fmt.Sprintf("trie: AppendColumns got %d columns, want %d", len(cols), b.arity))
	}
	for i, c := range cols {
		b.cols[i] = append(b.cols[i], c...)
	}
	if anns != nil {
		b.annotated = true
		b.anns = append(b.anns, anns...)
	}
}

// Add appends one un-annotated tuple column-wise: no per-row allocation,
// just one amortized append per attribute.
func (b *ColumnarBuilder) Add(tuple ...uint32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("trie: Add arity %d, want %d", len(tuple), b.arity))
	}
	for i, v := range tuple {
		b.cols[i] = append(b.cols[i], v)
	}
}

// AddAnn appends one annotated tuple column-wise.
func (b *ColumnarBuilder) AddAnn(ann float64, tuple ...uint32) {
	if len(tuple) != b.arity {
		panic(fmt.Sprintf("trie: AddAnn arity %d, want %d", len(tuple), b.arity))
	}
	b.annotated = true
	for i, v := range tuple {
		b.cols[i] = append(b.cols[i], v)
	}
	b.anns = append(b.anns, ann)
}

// FromColumns builds a trie directly from flat columns (see SetColumns
// for the ownership contract).
func FromColumns(cols [][]uint32, anns []float64, op semiring.Op, layout LayoutFunc) *Trie {
	b := NewColumnarBuilder(len(cols), op, layout)
	b.SetColumns(cols, anns)
	return b.Build()
}

// Build sorts, deduplicates (combining annotations under ⊕) and
// materializes the trie. The builder must not be reused afterwards.
// Columns already in lexicographic row order skip the sort entirely.
func (b *ColumnarBuilder) Build() *Trie {
	n := b.Len()
	if b.annotated && len(b.anns) != n {
		panic("trie: mixed annotated and un-annotated tuples")
	}
	t := &Trie{Arity: b.arity, Annotated: b.annotated, Op: b.op}
	if b.arity == 0 {
		t.Scalar = b.op.Zero()
		for _, a := range b.anns {
			t.Scalar = b.op.Add(t.Scalar, a)
		}
		return t
	}
	if !b.sortedPrefix(n) {
		b.sortColumns(n)
	}
	n = b.dedup(n)
	for i := range b.cols {
		b.cols[i] = b.cols[i][:n]
	}
	if b.annotated {
		b.anns = b.anns[:n]
	}
	t.Root = b.buildNode(0, 0, n, n >= parallelBuildMin)
	return t
}

// sortedPrefix reports whether rows [0,n) are already in lexicographic
// order (the natural emission order of sequential loop nests).
func (b *ColumnarBuilder) sortedPrefix(n int) bool {
	for i := 1; i < n; i++ {
		for _, col := range b.cols {
			if col[i] > col[i-1] {
				break
			}
			if col[i] < col[i-1] {
				return false
			}
		}
	}
	return true
}

const (
	// insertionMin is the segment size below which insertion sort beats
	// counting passes.
	insertionMin = 48
	// parallelSortMin is the row count below which the sort stays on one
	// goroutine.
	parallelSortMin = 4096
	// parallelBuildMin is the row count below which node construction
	// stays on one goroutine.
	parallelBuildMin = 1 << 16
)

// sortColumns orders the rows lexicographically. The sort runs over an
// index permutation: the first column is partitioned with a parallel MSD
// radix step on its most significant varying byte, each partition is
// finished (remaining bytes, then recursively the later columns) on its
// own goroutine, and finally every column plus the annotation column is
// gathered through the permutation in one sequential pass each. No
// comparison closures, no per-row allocations.
func (b *ColumnarBuilder) sortColumns(n int) {
	idx := make([]uint32, n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	tmp := make([]uint32, n)

	nw := runtime.GOMAXPROCS(0)
	if n < parallelSortMin || nw <= 1 {
		sortRuns(b.cols, idx, tmp, 0, n, 0)
	} else {
		b.parallelSort(idx, tmp, n, nw)
	}
	b.gather(idx, tmp, n, nw)
}

// parallelSort partitions idx by the most significant varying byte of
// column 0 (one histogram pass + one stable scatter), then hands the
// partitions to nw goroutines via an atomic work queue; each partition is
// sorted independently (disjoint idx/tmp segments).
func (b *ColumnarBuilder) parallelSort(idx, tmp []uint32, n, nw int) {
	col := b.cols[0]
	minV, maxV := col[idx[0]], col[idx[0]]
	for _, id := range idx[1:] {
		v := col[id]
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV == maxV {
		// Constant first column: a single run; recurse into the later
		// columns directly (their sort re-enters the same machinery for
		// large segments via sortRuns' radix passes).
		sortRuns(b.cols, idx, tmp, 0, n, 0)
		return
	}
	shift := topVaryingShift(minV ^ maxV)
	var count [256]int
	for _, id := range idx {
		count[(col[id]>>shift)&0xff]++
	}
	var starts [257]int
	sum := 0
	for d := 0; d < 256; d++ {
		starts[d] = sum
		sum += count[d]
	}
	starts[256] = sum
	pos := starts
	for _, id := range idx {
		d := (col[id] >> shift) & 0xff
		tmp[pos[d]] = id
		pos[d]++
	}
	copy(idx, tmp)

	// Finish each partition in parallel: sort the remaining (lower) bytes
	// of column 0, then recurse into the later columns per run of equal
	// values. Small partitions are batched behind one atomic counter so a
	// skewed byte histogram doesn't serialize the tail.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d := int(next.Add(1)) - 1
				if d >= 256 {
					return
				}
				lo, hi := starts[d], starts[d+1]
				if hi-lo < 2 {
					continue
				}
				// Bytes above shift are constant within a partition;
				// sort the rest of the key, then the later columns.
				radixSortSegment(col, idx, tmp, lo, hi, shift)
				recurseRuns(b.cols, idx, tmp, lo, hi, 0)
			}
		}()
	}
	wg.Wait()
}

// topVaryingShift returns the bit shift of the most significant byte set
// in diff (diff != 0).
func topVaryingShift(diff uint32) uint {
	switch {
	case diff>>24 != 0:
		return 24
	case diff>>16 != 0:
		return 16
	case diff>>8 != 0:
		return 8
	default:
		return 0
	}
}

// gather applies the permutation to every column (reusing tmp for the
// first) and to the annotation column, splitting the work across columns.
func (b *ColumnarBuilder) gather(idx, tmp []uint32, n, nw int) {
	var wg sync.WaitGroup
	for c := range b.cols {
		col := b.cols[c]
		var out []uint32
		if c == 0 {
			out = tmp // recycle the sort scratch for the first column
		} else {
			out = make([]uint32, n)
		}
		b.cols[c] = out
		if n >= parallelSortMin && nw > 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, id := range idx {
					out[i] = col[id]
				}
			}()
		} else {
			for i, id := range idx {
				out[i] = col[id]
			}
		}
	}
	if b.annotated {
		anns := make([]float64, n)
		for i, id := range idx {
			anns[i] = b.anns[id]
		}
		b.anns = anns
	}
	wg.Wait()
}

// sortRuns sorts idx[lo:hi) by cols[level] and recurses into runs of
// equal values at the next column.
func sortRuns(cols [][]uint32, idx, tmp []uint32, lo, hi, level int) {
	if hi-lo < 2 || level >= len(cols) {
		return
	}
	radixSortSegment(cols[level], idx, tmp, lo, hi, 32)
	recurseRuns(cols, idx, tmp, lo, hi, level)
}

// recurseRuns walks the (already sorted) segment's runs of equal values
// at `level` and sorts each run by the next column.
func recurseRuns(cols [][]uint32, idx, tmp []uint32, lo, hi, level int) {
	if level+1 >= len(cols) {
		return
	}
	col := cols[level]
	i := lo
	for i < hi {
		v := col[idx[i]]
		j := i + 1
		for j < hi && col[idx[j]] == v {
			j++
		}
		if j-i > 1 {
			sortRuns(cols, idx, tmp, i, j, level+1)
		}
		i = j
	}
}

// radixSortSegment sorts idx[lo:hi) by col keys using LSD byte passes,
// skipping bytes that don't vary; bytes at or above maxShift are known
// constant by the caller. Small segments fall back to insertion sort.
func radixSortSegment(col []uint32, idx, tmp []uint32, lo, hi int, maxShift uint) {
	seg := idx[lo:hi]
	if len(seg) < insertionMin {
		insertionSortIdx(col, seg)
		return
	}
	// One scan determines which bytes vary at all.
	first := col[seg[0]]
	var diff uint32
	for _, id := range seg[1:] {
		diff |= col[id] ^ first
	}
	if diff == 0 {
		return
	}
	src, dst := seg, tmp[lo:hi]
	swapped := false
	for shift := uint(0); shift < maxShift && shift < 32; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		var count [256]int
		for _, id := range src {
			count[(col[id]>>shift)&0xff]++
		}
		sum := 0
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, id := range src {
			d := (col[id] >> shift) & 0xff
			dst[count[d]] = id
			count[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(seg, src)
	}
}

// insertionSortIdx sorts idx by col keys; ties keep no particular order
// (equal keys are re-sorted by the next column or folded by dedup).
func insertionSortIdx(col []uint32, idx []uint32) {
	for i := 1; i < len(idx); i++ {
		id := idx[i]
		k := col[id]
		j := i
		for j > 0 && col[idx[j-1]] > k {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = id
	}
}

// dedup compacts adjacent duplicate rows in place, combining their
// annotations with ⊕, and returns the new row count.
func (b *ColumnarBuilder) dedup(n int) int {
	if n == 0 {
		return 0
	}
	w := 0
	for i := 1; i < n; i++ {
		eq := true
		for _, col := range b.cols {
			if col[i] != col[w] {
				eq = false
				break
			}
		}
		if eq {
			if b.annotated {
				b.anns[w] = b.op.Add(b.anns[w], b.anns[i])
			}
			continue
		}
		w++
		if w != i {
			for _, col := range b.cols {
				col[w] = col[i]
			}
			if b.annotated {
				b.anns[w] = b.anns[i]
			}
		}
	}
	return w + 1
}

// buildNode builds the trie node for rows [lo,hi) at the given level; the
// columns must be sorted and deduplicated. Leaf sets and annotation
// slices alias the columns (zero copy); inner levels gather their
// distinct values into fresh slices. When parallel is set, the children
// of this node are built concurrently.
func (b *ColumnarBuilder) buildNode(level, lo, hi int, parallel bool) *Node {
	if hi == lo {
		return &Node{}
	}
	col := b.cols[level]
	if level == b.arity-1 {
		// Post-dedup, leaf values under one prefix are strictly
		// increasing: the column segment is the set.
		vals := col[lo:hi:hi]
		n := &Node{Set: set.BuildLayout(vals, b.layout(level, vals))}
		if b.annotated {
			n.Ann = b.anns[lo:hi:hi]
		}
		return n
	}
	var vals []uint32
	var starts []int
	for i := lo; i < hi; i++ {
		if len(vals) == 0 || vals[len(vals)-1] != col[i] {
			vals = append(vals, col[i])
			starts = append(starts, i)
		}
	}
	starts = append(starts, hi)
	n := &Node{
		Set:      set.BuildLayout(vals, b.layout(level, vals)),
		Children: make([]*Node, len(vals)),
	}
	nw := runtime.GOMAXPROCS(0)
	if !parallel || nw <= 1 || len(vals) < 2 {
		for gi := range vals {
			n.Children[gi] = b.buildNode(level+1, starts[gi], starts[gi+1], false)
		}
		return n
	}
	// Work-stealing over the first-level runs: an atomic cursor instead
	// of static chunks, so one high-degree value doesn't strand a worker.
	var next atomic.Int64
	var wg sync.WaitGroup
	if nw > len(vals) {
		nw = len(vals)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(vals) {
					return
				}
				n.Children[gi] = b.buildNode(level+1, starts[gi], starts[gi+1], false)
			}
		}()
	}
	wg.Wait()
	return n
}
