package trie

import (
	"math/rand"
	"testing"

	"emptyheaded/internal/semiring"
)

// benchRows draws unsorted 2-attribute tuples; skewed mimics a power-law
// degree distribution (hot low ids plus a heavy tail).
func benchRows(n int, skewed bool) (rows []refRow, cols [][]uint32, anns []float64) {
	rng := rand.New(rand.NewSource(99))
	rows = make([]refRow, n)
	cols = [][]uint32{make([]uint32, n), make([]uint32, n)}
	anns = make([]float64, n)
	for i := range rows {
		var u, v uint32
		if skewed {
			u = uint32(rng.Intn(64))
			v = uint32(rng.Intn(1 << 18))
		} else {
			u = uint32(rng.Intn(1 << 20))
			v = uint32(rng.Intn(1 << 20))
		}
		rows[i] = refRow{tuple: []uint32{u, v}, ann: float64(i % 7)}
		cols[0][i], cols[1][i] = u, v
		anns[i] = float64(i % 7)
	}
	return rows, cols, anns
}

// BenchmarkTrieBuildRowRef is the pre-columnar row-at-a-time build
// (per-row allocations + sort.Slice), the baseline the columnar path is
// measured against.
func BenchmarkTrieBuildRowRef(b *testing.B) {
	rows, _, _ := benchRows(1<<18, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refRows := make([]refRow, len(rows))
		for j, r := range rows {
			refRows[j] = refRow{tuple: append([]uint32(nil), r.tuple...), ann: r.ann}
		}
		tr := refBuild(2, semiring.Sum, nil, true, refRows)
		if tr.Cardinality() == 0 {
			b.Fatal("empty trie")
		}
	}
}

// BenchmarkTrieBuildColumnar builds the same relation through the
// columnar radix path from pre-filled columns (the worker emit shape).
func BenchmarkTrieBuildColumnar(b *testing.B) {
	_, cols, anns := benchRows(1<<18, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := [][]uint32{append([]uint32(nil), cols[0]...), append([]uint32(nil), cols[1]...)}
		a := append([]float64(nil), anns...)
		tr := FromColumns(c, a, semiring.Sum, nil)
		if tr.Cardinality() == 0 {
			b.Fatal("empty trie")
		}
	}
}

func BenchmarkTrieBuildColumnarSkewed(b *testing.B) {
	_, cols, anns := benchRows(1<<18, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := [][]uint32{append([]uint32(nil), cols[0]...), append([]uint32(nil), cols[1]...)}
		a := append([]float64(nil), anns...)
		tr := FromColumns(c, a, semiring.Sum, nil)
		if tr.Cardinality() == 0 {
			b.Fatal("empty trie")
		}
	}
}

func BenchmarkTrieBuildRowRefSkewed(b *testing.B) {
	rows, _, _ := benchRows(1<<18, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refRows := make([]refRow, len(rows))
		for j, r := range rows {
			refRows[j] = refRow{tuple: append([]uint32(nil), r.tuple...), ann: r.ann}
		}
		tr := refBuild(2, semiring.Sum, nil, true, refRows)
		if tr.Cardinality() == 0 {
			b.Fatal("empty trie")
		}
	}
}
