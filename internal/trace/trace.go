// Package trace is a lightweight span recorder for query-lifecycle
// observability. A Trace is a flat list of named spans (phase begin/end
// with microsecond offsets from trace start) plus trace-level attributes;
// a Recorder hands out traces with monotonically increasing IDs and keeps
// a ring buffer of the last N completed ones for /debug/queries.
//
// Every method is safe on a nil receiver: a nil *Recorder starts nil
// *Traces, and all *Trace methods no-op on nil. Instrumentation sites can
// therefore call Begin/End/Annot unconditionally; the disabled path costs
// one nil check.
package trace

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a trace or span.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one completed (or still-open, DurUS < 0) phase of a trace.
// Offsets are microseconds from the trace's start so a rendered trace
// reads as a timeline.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// SpanID indexes a span within its trace; -1 (from Begin on a nil trace)
// is ignored by End and SpanAttr.
type SpanID int

// Trace records one request's phases. Exported fields are read by the
// debug endpoints after Finish; during recording they are guarded by mu.
type Trace struct {
	ID          uint64    `json:"id"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Start       time.Time `json:"start"`
	TotalUS     int64     `json:"total_us"`
	Error       string    `json:"error,omitempty"`
	Spans       []Span    `json:"spans"`
	Attrs       []Attr    `json:"attrs,omitempty"`

	mu  sync.Mutex
	rec *Recorder
}

// Begin opens a named span and returns its ID.
func (t *Trace) Begin(name string) SpanID {
	if t == nil {
		return -1
	}
	at := time.Since(t.Start).Microseconds()
	t.mu.Lock()
	id := SpanID(len(t.Spans))
	t.Spans = append(t.Spans, Span{Name: name, StartUS: at, DurUS: -1})
	t.mu.Unlock()
	return id
}

// End closes the span, recording its duration.
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	at := time.Since(t.Start).Microseconds()
	t.mu.Lock()
	if int(id) < len(t.Spans) {
		sp := &t.Spans[id]
		sp.DurUS = at - sp.StartUS
	}
	t.mu.Unlock()
}

// SpanAttr attaches a key/value annotation to an open or closed span.
func (t *Trace) SpanAttr(id SpanID, key, val string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.Spans) {
		sp := &t.Spans[id]
		sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: val})
	}
	t.mu.Unlock()
}

// SpanAttrInt is SpanAttr for integer values.
func (t *Trace) SpanAttrInt(id SpanID, key string, v int64) {
	if t == nil {
		return
	}
	t.SpanAttr(id, key, strconv.FormatInt(v, 10))
}

// Annot attaches a trace-level key/value annotation.
func (t *Trace) Annot(key, val string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Attrs = append(t.Attrs, Attr{Key: key, Val: val})
	t.mu.Unlock()
}

// AnnotInt is Annot for integer values.
func (t *Trace) AnnotInt(key string, v int64) {
	if t == nil {
		return
	}
	t.Annot(key, strconv.FormatInt(v, 10))
}

// SetFingerprint records the query's structural fingerprint.
func (t *Trace) SetFingerprint(fp string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Fingerprint = fp
	t.mu.Unlock()
}

// SetError records a request-level error.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Error = msg
	t.mu.Unlock()
}

// SpansSnapshot returns a copy of the spans recorded so far.
func (t *Trace) SpansSnapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.Spans))
	copy(out, t.Spans)
	t.mu.Unlock()
	return out
}

// PhaseUS sums the duration of every closed span with the given name.
func (t *Trace) PhaseUS(name string) int64 {
	if t == nil {
		return 0
	}
	var total int64
	t.mu.Lock()
	for i := range t.Spans {
		if t.Spans[i].Name == name && t.Spans[i].DurUS >= 0 {
			total += t.Spans[i].DurUS
		}
	}
	t.mu.Unlock()
	return total
}

// Finish stamps the total duration, closes any still-open spans, and
// files the trace into its recorder's ring buffer. Call exactly once.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	at := time.Since(t.Start).Microseconds()
	t.mu.Lock()
	t.TotalUS = at
	for i := range t.Spans {
		if t.Spans[i].DurUS < 0 {
			t.Spans[i].DurUS = at - t.Spans[i].StartUS
		}
	}
	rec := t.rec
	t.rec = nil
	t.mu.Unlock()
	if rec != nil {
		rec.file(t)
	}
}

// Recorder assigns trace IDs and retains the last N finished traces.
type Recorder struct {
	lastID atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // ring[next] is the oldest slot
	next int
	n    int // traces filed so far, saturating at len(ring)
}

// NewRecorder keeps the most recent n completed traces (default 128).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 128
	}
	return &Recorder{ring: make([]*Trace, n)}
}

// Start begins a new trace of the given kind. Returns nil (a valid,
// inert trace) when the recorder itself is nil.
func (r *Recorder) Start(kind string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{
		ID:    r.lastID.Add(1),
		Kind:  kind,
		Start: time.Now(),
		Spans: make([]Span, 0, 8),
		rec:   r,
	}
}

func (r *Recorder) file(t *Trace) {
	r.mu.Lock()
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// Completed returns up to max finished traces, newest first. max <= 0
// means all retained traces.
func (r *Recorder) Completed(max int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if max <= 0 || max > r.n {
		max = r.n
	}
	out := make([]*Trace, 0, max)
	for i := 1; i <= max; i++ {
		idx := (r.next - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// Get returns the retained trace with the given ID, if still in the ring.
func (r *Recorder) Get(id uint64) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.n; i++ {
		idx := (r.next - i + len(r.ring)) % len(r.ring)
		if tr := r.ring[idx]; tr != nil && tr.ID == id {
			return tr, true
		}
	}
	return nil, false
}
