package trace

import (
	"testing"
	"time"
)

func TestTraceSpansAndFinish(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Start("query")
	if tr.ID == 0 {
		t.Fatal("trace ID not assigned")
	}
	sp := tr.Begin("plan")
	time.Sleep(2 * time.Millisecond)
	tr.End(sp)
	tr.SpanAttrInt(sp, "bags", 3)
	open := tr.Begin("execute") // left open: Finish must close it
	tr.Annot("query", "triangle")
	tr.SetFingerprint("fp123")
	time.Sleep(time.Millisecond)
	tr.Finish()

	if tr.TotalUS <= 0 {
		t.Fatalf("TotalUS = %d", tr.TotalUS)
	}
	if got := tr.PhaseUS("plan"); got < 1000 {
		t.Fatalf("plan phase = %dus, want >= 1000", got)
	}
	spans := tr.SpansSnapshot()
	if len(spans) != 2 {
		t.Fatalf("span count = %d", len(spans))
	}
	if spans[open].DurUS < 0 {
		t.Fatal("open span not closed by Finish")
	}
	if spans[sp].Attrs[0].Key != "bags" || spans[sp].Attrs[0].Val != "3" {
		t.Fatalf("span attrs = %+v", spans[sp].Attrs)
	}

	got, ok := r.Get(tr.ID)
	if !ok || got.Fingerprint != "fp123" {
		t.Fatalf("Get(%d) = %+v, %v", tr.ID, got, ok)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		tr := r.Start("query")
		ids = append(ids, tr.ID)
		tr.Finish()
	}
	done := r.Completed(0)
	if len(done) != 3 {
		t.Fatalf("retained %d traces, want 3", len(done))
	}
	// Newest first: IDs 5, 4, 3.
	for i, want := range []uint64{ids[4], ids[3], ids[2]} {
		if done[i].ID != want {
			t.Fatalf("Completed()[%d].ID = %d, want %d", i, done[i].ID, want)
		}
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if got := r.Completed(2); len(got) != 2 || got[0].ID != ids[4] {
		t.Fatalf("Completed(2) = %v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Start("query")
	if tr != nil {
		t.Fatal("nil recorder should start nil trace")
	}
	// All of these must be no-ops, not panics.
	sp := tr.Begin("x")
	if sp != -1 {
		t.Fatalf("nil Begin = %d", sp)
	}
	tr.End(sp)
	tr.SpanAttr(sp, "k", "v")
	tr.Annot("k", "v")
	tr.AnnotInt("k", 1)
	tr.SetFingerprint("fp")
	tr.SetError("boom")
	tr.Finish()
	if tr.PhaseUS("x") != 0 || tr.SpansSnapshot() != nil {
		t.Fatal("nil trace leaked state")
	}
	if r.Completed(10) != nil {
		t.Fatal("nil recorder Completed")
	}
}
