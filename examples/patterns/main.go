// Graph pattern mining with GHD query plans: the 4-clique, Lollipop and
// Barbell queries of §5.3, with their decompositions. The Barbell plan
// shows early aggregation (triangles counted per endpoint before the
// bridge join) and redundant-bag elimination (the two triangle bags are
// recognized as identical, App. B.2).
package main

import (
	"fmt"
	"log"

	"emptyheaded"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
)

func main() {
	g := gen.PowerLaw(3000, 20000, 2.3, 13)
	pruned := g.Reorder(graph.OrderDegree, 0).Prune()

	queries := []struct {
		name, query string
		graph       *emptyheaded.Graph
	}{
		{"4-clique (K4)",
			`K4(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,w),Edge(y,w),Edge(z,w); c=<<COUNT(*)>>.`,
			pruned},
		{"Lollipop (L3,1)",
			`L31(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,w); c=<<COUNT(*)>>.`,
			g},
		{"Barbell (B3,1)",
			`B31(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,x2),Edge(x2,y2),Edge(y2,z2),Edge(x2,z2); c=<<COUNT(*)>>.`,
			g},
	}
	for _, q := range queries {
		eng := emptyheaded.New()
		eng.LoadGraph("Edge", q.graph)
		res, err := eng.Run(q.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s count = %.0f\n", q.name, res.Scalar())
		plan, err := eng.Explain(q.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan)
	}

	// The "-GHD" ablation (single-bag plan, the LogicBlox shape of
	// Fig. 3b) computes the same Lollipop answer without early
	// aggregation.
	single := emptyheaded.New(emptyheaded.WithSingleBagPlans())
	single.LoadGraph("Edge", g)
	res, err := single.Run(queries[1].query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lollipop via single-bag plan (same answer): %.0f\n", res.Scalar())
}
