// Single-Source Shortest Paths in two datalog rules (Table 1). The MIN
// aggregate is monotone, so the engine automatically selects seminaive
// (delta-frontier) evaluation — the distinction §3.3 draws against naive
// recursion.
package main

import (
	"fmt"
	"log"

	"emptyheaded"
	"emptyheaded/internal/baseline"
	"emptyheaded/internal/gen"
)

func main() {
	g := gen.PowerLaw(10000, 60000, 2.3, 11)
	start := g.MaxDegreeNode() // the paper's start-node convention

	eng := emptyheaded.New()
	eng.LoadGraph("Edge", g)
	query := fmt.Sprintf(`
SSSP(x;y:int) :- Edge("%d",x); y=1.
SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.
`, start)
	res, err := eng.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSSP from vertex %d (degree %d): %d vertices reached\n",
		start, g.Degree(int(start)), res.Cardinality())

	// Validate against hand-coded BFS (unit weights).
	ref := baseline.LowLevelSSSP(g, start)
	histogram := map[int]int{}
	mismatches := 0
	res.ForEach(func(tp []uint32, ann float64) {
		histogram[int(ann)]++
		if tp[0] != start && int32(ann) != ref[tp[0]] {
			mismatches++
		}
	})
	if mismatches > 0 {
		log.Fatalf("%d distance mismatches against BFS", mismatches)
	}
	fmt.Println("distances match hand-coded BFS ✓")
	fmt.Println("distance histogram:")
	for d := 1; histogram[d] > 0; d++ {
		fmt.Printf("  dist %d: %d vertices\n", d, histogram[d])
	}
}
