// Quickstart: load a small graph, count and list triangles, and inspect
// the GHD-based physical plan — the Figure 1 pipeline end to end.
package main

import (
	"fmt"
	"log"

	"emptyheaded"
	"emptyheaded/internal/gen"
)

func main() {
	// A 2000-vertex power-law graph (stand-in for a small social graph).
	g := gen.PowerLaw(2000, 12000, 2.2, 42)

	eng := emptyheaded.New()
	eng.LoadGraph("Edge", g)

	// Triangle counting: one line of datalog (versus ~150-400 lines in
	// the low-level engines the paper compares against).
	res, err := eng.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles (all orientations): %.0f\n", res.Scalar())

	// Triangle listing with full materialization.
	list, err := eng.Run(`Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing cardinality: %d\n", list.Cardinality())

	// The compiled plan: GHD, attribute order, and the generated loop
	// nest of set intersections (Figure 1 of the paper).
	plan, err := eng.Explain(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphysical plan:")
	fmt.Print(plan)
}
