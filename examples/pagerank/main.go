// PageRank expressed in three datalog rules (Table 1 of the paper),
// validated against a hand-coded reference implementation.
package main

import (
	"fmt"
	"log"
	"math"

	"emptyheaded"
	"emptyheaded/internal/baseline"
	"emptyheaded/internal/gen"
)

const query = `
N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
InvDeg(x;d:float) :- Edge(x,y); d=1/<<COUNT(*)>>.
PageRank(x;y:float) :- Edge(x,z); y=1/N.
PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.
`

func main() {
	g := gen.PowerLaw(5000, 40000, 2.3, 7)

	eng := emptyheaded.New()
	eng.LoadGraph("Edge", g)
	res, err := eng.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank over %d vertices, 5 iterations\n", res.Cardinality())

	// Cross-check against the hand-coded CSR kernel (the Galois-style
	// baseline of Table 6).
	ref := baseline.LowLevelPageRank(g, 5, 0)
	var maxErr float64
	var top uint32
	var topVal float64
	res.ForEach(func(tp []uint32, ann float64) {
		if d := math.Abs(ann - ref[tp[0]]); d > maxErr {
			maxErr = d
		}
		if ann > topVal {
			topVal, top = ann, tp[0]
		}
	})
	fmt.Printf("max |engine - reference| = %.2e\n", maxErr)
	fmt.Printf("top-ranked vertex: %d (score %.5f, degree %d)\n",
		top, topVal, g.Degree(int(top)))
	if maxErr > 1e-9 {
		log.Fatal("engine disagrees with reference")
	}
	fmt.Println("engine matches the hand-coded reference ✓")
}
