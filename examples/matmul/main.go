// Sparse matrix multiplication through semiring annotations — the §2.2
// claim that EmptyHeaded's aggregation framework covers "more
// sophisticated operations such as matrix multiplication". The product
// C(i,k) = Σ_j A(i,j)·B(j,k) is one rule: the join multiplies annotations
// (⊗) and projecting j away sums them (⊕).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"emptyheaded"
)

const n = 400

func main() {
	rng := rand.New(rand.NewSource(5))
	var aT, bT [][]uint32
	var aV, bV []float64
	a := map[[2]int]float64{}
	b := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(10) == 0 {
				v := rng.Float64()
				a[[2]int{i, j}] = v
				aT = append(aT, []uint32{uint32(i), uint32(j)})
				aV = append(aV, v)
			}
			if rng.Intn(10) == 0 {
				v := rng.Float64()
				b[[2]int{i, j}] = v
				bT = append(bT, []uint32{uint32(i), uint32(j)})
				bV = append(bV, v)
			}
		}
	}

	eng := emptyheaded.New()
	if err := eng.AddAnnotatedRelation("A", 2, "SUM", aT, aV); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddAnnotatedRelation("B", 2, "SUM", bT, bV); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(`C(i,k;v:float) :- A(i,j),B(j,k); v=<<SUM(j)>>.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A·B: %d nonzeros (A: %d, B: %d, %d×%d)\n",
		res.Cardinality(), len(aT), len(bT), n, n)

	// Verify a sample of entries against the direct computation.
	var maxErr float64
	res.ForEach(func(tp []uint32, ann float64) {
		var want float64
		for j := 0; j < n; j++ {
			want += a[[2]int{int(tp[0]), j}] * b[[2]int{j, int(tp[1])}]
		}
		if d := math.Abs(ann - want); d > maxErr {
			maxErr = d
		}
	})
	fmt.Printf("max |engine - direct| = %.2e\n", maxErr)
	if maxErr > 1e-9 {
		log.Fatal("engine disagrees with direct computation")
	}
	fmt.Println("sparse matrix product matches ✓")
}
