module emptyheaded

go 1.24
