// Command benchjson converts `go test -bench` output into a JSON
// artifact, so CI can archive benchmark results (BENCH_pr2.json and
// successors) and the perf trajectory accumulates across PRs.
//
// Usage: go run ./scripts/benchjson -in bench.out -out BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Artifact is the output document.
type Artifact struct {
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs string   `json:"gomaxprocs,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	in := flag.String("in", "-", "benchmark output file (- for stdin)")
	out := flag.String("out", "bench.json", "JSON artifact path")
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	art := Artifact{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !contains(fields, "ns/op") {
			continue
		}
		res := Result{Name: fields[0], Package: pkg}
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				art.GoMaxProcs = res.Name[i+1:]
				res.Name = res.Name[:i]
			}
		}
		var err error
		if res.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		art.Results = append(art.Results, res)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(art.Results), *out)
}

func contains(fields []string, s string) bool {
	for _, f := range fields {
		if f == s {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
