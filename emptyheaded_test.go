package emptyheaded

import (
	"strings"
	"testing"

	"emptyheaded/internal/gen"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := gen.ErdosRenyi(200, 1500, 31)
	eng := New()
	eng.LoadGraph("Edge", g)
	res, err := eng.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() <= 0 {
		t.Fatalf("triangle count %v", res.Scalar())
	}
	// All ablation options agree on the answer.
	for _, opts := range [][]Option{
		{WithUintLayout()},
		{WithUintLayout(), WithMergeOnly()},
		{WithoutSIMD()},
		{WithSingleBagPlans()},
		{WithParallelism(2)},
		{WithBitsetLayout()},
		{WithCompositeLayout()},
	} {
		e2 := New(opts...)
		e2.LoadGraph("Edge", g)
		r2, err := e2.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Scalar() != res.Scalar() {
			t.Fatalf("ablation disagreement: %v vs %v", r2.Scalar(), res.Scalar())
		}
	}
}

func TestLoadEdgeListAndSelection(t *testing.T) {
	eng := New()
	err := eng.LoadEdgeList("Edge", strings.NewReader("1 2\n2 3\n3 1\n3 4\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 6 { // triangle 1-2-3, all 6 orientations
		t.Fatalf("triangles=%v want 6", res.Scalar())
	}
	// Selection constants resolve through the dictionary.
	nres, err := eng.Run(`Nbr(x) :- Edge("3",x).`)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Cardinality() != 3 {
		t.Fatalf("neighbors of 3 = %d want 3", nres.Cardinality())
	}
}

func TestAlias(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 32)
	eng := New()
	eng.LoadGraph("Edge", g)
	for _, a := range []string{"R", "S", "T"} {
		if err := eng.Alias(a, "Edge"); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := eng.Run(`TC(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(`TC2(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Scalar() != r2.Scalar() {
		t.Fatalf("alias answer differs: %v vs %v", r1.Scalar(), r2.Scalar())
	}
}

func TestExplainPublic(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 33)
	eng := New()
	eng.LoadGraph("Edge", g)
	s, err := eng.Explain(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "GHD") || !strings.Contains(s, "attribute order") {
		t.Fatalf("explain output:\n%s", s)
	}
}

func TestAnnotatedRelationAPI(t *testing.T) {
	eng := New()
	eng.AddRelation("E", 2, [][]uint32{{0, 1}, {1, 2}})
	err := eng.AddAnnotatedRelation("W", 1, "SUM",
		[][]uint32{{1}, {2}}, []float64{2.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(`S(x;s:float) :- E(x,z),W(z); s=<<SUM(z)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint32]float64{}
	res.ForEach(func(tp []uint32, ann float64) { got[tp[0]] = ann })
	if got[0] != 2.5 || got[1] != 4 {
		t.Fatalf("sums=%v", got)
	}
	if err := eng.AddAnnotatedRelation("X", 1, "AVG", nil, nil); err == nil {
		t.Fatal("AVG should be rejected")
	}
	if err := eng.Alias("Y", "missing"); err == nil {
		t.Fatal("alias of missing relation should fail")
	}
}

func TestStreamingUpdateAPI(t *testing.T) {
	eng := New()
	eng.AddRelation("E", 2, [][]uint32{{0, 1}, {1, 2}, {0, 2}})
	res, err := eng.Run(`TC(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 1 {
		t.Fatalf("seed triangles = %g", res.Scalar())
	}
	// Stream a second triangle in, delete the first one's chord.
	if err := eng.Insert("E", [][]uint32{{1, 3}, {3, 4}, {1, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete("E", [][]uint32{{0, 2}}); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Run(`TC(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 1 {
		t.Fatalf("triangles after stream = %g, want 1", res.Scalar())
	}
	if err := eng.Compact("E"); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Run(`TC(;w:long) :- E(x,y),E(y,z),E(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 1 {
		t.Fatalf("triangles after compaction = %g, want 1", res.Scalar())
	}
	if err := eng.Insert("E", nil); err == nil {
		t.Fatal("empty insert should fail")
	}
	if err := eng.Insert("E", [][]uint32{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged insert should fail")
	}
}
